// Package rebuild implements bottom-up integrity-tree reconstruction for
// the generated-counter (CounterGen) scheme family. Any scheme whose parent
// counters are derived from child contents (Eq. 1/Eq. 2) can rebuild every
// interior level by summation once the leaf level is trusted; the packages
// scue, pipesit and triad differ only in HOW the leaf level is recovered
// (Osiris-style search over data blocks vs. reading strictly-persisted leaf
// images) and in what runtime state survives the crash.
//
// Degraded recovery here is built on EXACT counter accounting: every data
// block's encryption counter is either proven by its MAC (fast candidate
// over the stale base, then a base-less search over hint-congruent values)
// or pinned arithmetically from the tag hint when recorded media evidence
// says the ciphertext itself is gone. The reconstructed leaf total is then
// a conservation law against the on-chip recovery register: a residual with
// no unpinnable block behind it can only mean replayed authentic-stale
// state, and recovery fails closed by condemning the whole tree instead of
// forgiving the mismatch. Only genuine double destruction — evidenced media
// damage to both a ciphertext and its leaf's stale base — leaves the total
// unknowable, and only that (unforgeable) evidence forgives a residual.
//
// The helpers here keep the recovery accounting (NVMReads/NVMWrites/MACOps/
// NodesRecovered and the §IV-D nanosecond cost model) identical across the
// family, so cross-scheme recovery comparisons measure the designs, not
// bookkeeping drift. All paths are read-only until WriteBack and therefore
// restartable: a mid-recovery re-crash simply reruns them from scratch.
package rebuild

import (
	"fmt"

	"steins/internal/cme"
	"steins/internal/counter"
	"steins/internal/memctrl"
	"steins/internal/nvmem"
	"steins/internal/sit"
)

// searchSteps caps the base-less hint-congruent counter search: enough to
// cover any counter a simulated workload reaches, bounded so an
// unverifiable block cannot stall recovery.
const searchSteps = 4096

// LeafRecovery aggregates one leaf-level reconstruction: the recovered
// nodes, their exact FValue total, and the two counters the register
// residual policy arbitrates on.
type LeafRecovery struct {
	Leaves []*sit.Node
	Total  uint64
	// Unpinnable counts data blocks whose exact counter could not be
	// established by any means: evidenced media damage destroyed the
	// ciphertext AND the stale base needed to resolve the hint congruence.
	// Only these blocks make the leaf total genuinely unknowable, and the
	// evidence behind them cannot be manufactured by an attacker (the
	// device ledger records only real faults, never stores).
	Unpinnable int
	// AttackShaped counts blocks whose damage no recorded media evidence
	// explains — tampered ciphertexts, flipped tags, forged hints. Any such
	// block means an active adversary touched durable state, and the
	// residual policy fails closed regardless of whether the totals happen
	// to balance.
	AttackShaped int
	// Fenced is set by CheckRegister when the residual policy condemned
	// the whole tree; the scheme should still write back the rebuilt
	// (sealed, possibly stale) tree so re-admission has a coherent base.
	Fenced bool
}

// LeafFromData reconstructs one leaf node from its covered data blocks,
// exactly where possible: MAC-proven counters first, hint-pinned counters
// where media evidence says the ciphertext is gone. In degraded mode an
// unverifiable coverage is quarantined (fenced, typed fail-fast reads) and
// the best-known counters are carried so the interior summation and the
// register conservation law stay exact; in strict mode the first
// unverifiable block aborts with the integrity error.
func LeafFromData(c *memctrl.Controller, rep *memctrl.RecoveryReport, rec *LeafRecovery, idx uint64, stale *sit.Node, degraded bool) (*sit.Node, error) {
	geo := &c.Layout().Geo
	node := &sit.Node{Level: 0, Index: idx, IsSplit: geo.SplitLeaf}

	var cause memctrl.QuarantineCause
	var evidence string
	condemn := func(q memctrl.QuarantineCause, ev string) {
		if cause == memctrl.CauseUnknown || (!cause.MediaExplained() && q.MediaExplained()) {
			cause, evidence = q, ev
		}
	}

	var lerr error
	if node.IsSplit {
		lerr = splitLeafFromData(c, rep, rec, node, stale, degraded, condemn)
	} else {
		lerr = generalLeafFromData(c, rep, rec, node, stale, degraded, condemn)
	}
	if lerr != nil {
		return nil, lerr
	}
	if cause != memctrl.CauseUnknown {
		c.QuarantineSubtree(0, idx, cause, evidence, &rep.Degradation)
	}
	return node, nil
}

// generalLeafFromData fills a general-counter leaf block by block.
func generalLeafFromData(c *memctrl.Controller, rep *memctrl.RecoveryReport, rec *LeafRecovery, node, stale *sit.Node, degraded bool, condemn func(memctrl.QuarantineCause, string)) error {
	geo := &c.Layout().Geo
	eng := c.Engine()
	for i := 0; i < int(geo.LeafCover); i++ {
		daddr := geo.DataAddr(node.Index, i)
		rep.NVMReads++
		ct := [64]byte(c.Device().Peek(daddr))
		tag := c.Tag(daddr)
		if !tag.Written {
			// Never written: the counter never left zero, whatever a
			// damaged stale image claims.
			node.SetCounter(i, 0)
			continue
		}
		ctr, macOps, ok := eng.RecoverCounterGC(&ct, daddr, tag, stale.Counter(i))
		rep.MACOps += macOps
		if ok {
			node.SetCounter(i, ctr)
			continue
		}
		// The unique candidate over the stale base failed: the base may be
		// lost (torn/flipped/replayed leaf image) while the block itself is
		// intact. A base-less search over hint-congruent counters proves
		// the block exactly if so.
		ctr, macOps, ok = eng.SearchCounterGC(&ct, daddr, tag, searchSteps)
		rep.MACOps += macOps
		if ok {
			node.SetCounter(i, ctr)
			continue
		}
		// No counter verifies this ciphertext: the block is damaged.
		if !degraded {
			return memctrl.TamperData(daddr, "during tree rebuild")
		}
		// Carry the hint-pinned candidate: exact when the hint and base are
		// authentic, and any forgery here surfaces as a register residual.
		node.SetCounter(i, cme.CandidateGC(stale.Counter(i), tag.Hint))
		dev := c.EvidenceAt(daddr)
		if mc, mok := memctrl.MediaCause(dev); mok {
			if _, baseLost := memctrl.MediaCause(c.EvidenceAt(geo.NodeAddr(0, node.Index))); baseLost {
				// Double destruction: ciphertext and stale base both lost
				// to evidenced media damage — the counter is unknowable.
				rec.Unpinnable++
			}
			condemn(mc, dev.String())
		} else {
			rec.AttackShaped++
			condemn(memctrl.CauseAmbiguous, dev.String())
		}
	}
	return nil
}

// splitLeafFromData fills a split-counter leaf: every written block must
// agree on one major (the high bits of each tag hint), minors come from the
// per-block search, and an unverifiable block's minor pins from its hint's
// low bits — the hint carries the full counter, so split leaves are never
// unpinnable.
func splitLeafFromData(c *memctrl.Controller, rep *memctrl.RecoveryReport, rec *LeafRecovery, node, stale *sit.Node, degraded bool, condemn func(memctrl.QuarantineCause, string)) error {
	geo := &c.Layout().Geo
	eng := c.Engine()
	major := stale.Split.Major
	have := false
	for i := 0; i < counter.SplitArity; i++ {
		daddr := geo.DataAddr(node.Index, i)
		rep.NVMReads++
		ct := [64]byte(c.Device().Peek(daddr))
		tag := c.Tag(daddr)
		if !tag.Written {
			continue
		}
		if h := tag.Hint >> 6; !have {
			major, have = h, true
		} else if h != major {
			// Tags from different major epochs cannot coexist after a
			// request-atomic crash: some of these blocks are replayed.
			if !degraded {
				return memctrl.ReplayAt("split leaf", 0, node.Index, "inconsistent majors")
			}
			rec.AttackShaped++
			condemn(memctrl.CauseReplayShaped, c.EvidenceAt(daddr).String())
			if h > major {
				major = h
			}
			continue
		}
		m, minor, macOps, ok := eng.RecoverCounterSC(&ct, daddr, tag, stale.Split.Minor[i])
		rep.MACOps += macOps
		if ok && m == major {
			node.Split.Minor[i] = minor
			continue
		}
		if !degraded {
			return memctrl.TamperData(daddr, "during tree rebuild")
		}
		// The ciphertext verifies under no minor: pin the exact counter
		// from the hint's minor bits.
		node.Split.Minor[i] = uint8(tag.Hint & 63)
		dev := c.EvidenceAt(daddr)
		if mc, mok := memctrl.MediaCause(dev); mok {
			condemn(mc, dev.String())
		} else {
			rec.AttackShaped++
			condemn(memctrl.CauseAmbiguous, dev.String())
		}
	}
	node.Split.Major = major
	return nil
}

// LeavesFromData reconstructs every leaf node from its covered data blocks
// (SCUE §II-D): cost scales with data capacity. See LeafFromData for the
// exactness and quarantine rules.
func LeavesFromData(c *memctrl.Controller, rep *memctrl.RecoveryReport, degraded bool) (*LeafRecovery, error) {
	geo := &c.Layout().Geo
	rec := &LeafRecovery{Leaves: make([]*sit.Node, geo.LevelNodes[0])}
	for idx := uint64(0); idx < geo.LevelNodes[0]; idx++ {
		rep.NVMReads++ // stale leaf
		stale := c.StaleNode(0, idx)
		node, err := LeafFromData(c, rep, rec, idx, stale, degraded)
		if err != nil {
			return nil, err
		}
		rec.Leaves[idx] = node
		rec.Total += node.FValue()
	}
	return rec, nil
}

// LeavesFromNVM reads every leaf's current NVM image and checks its
// self-seal: a generated-counter leaf that is persisted strictly (written
// through on every modification, Triad-NVM style) carries an HMAC under its
// own FValue, so tampering with counters or MAC is detected per leaf, and
// replay of an authentic old image is caught by the caller's register check
// on the returned total. Cost scales with the tree, not the data capacity.
// In degraded mode a leaf whose self-seal fails is reconstructed from its
// covered data blocks instead — a rebuilt leaf that proves every block by
// MAC heals outright; anything less is quarantined under LeafFromData's
// arbitration.
func LeavesFromNVM(c *memctrl.Controller, rep *memctrl.RecoveryReport, degraded bool) (*LeafRecovery, error) {
	geo := &c.Layout().Geo
	rec := &LeafRecovery{Leaves: make([]*sit.Node, geo.LevelNodes[0])}
	for idx := uint64(0); idx < geo.LevelNodes[0]; idx++ {
		rep.NVMReads++
		node := c.StaleNode(0, idx)
		// An all-zero line is the valid initial state of a never-flushed
		// leaf (cf. Controller.VerifyNodeLine).
		if line := c.Device().Peek(geo.NodeAddr(0, idx)); line != (nvmem.Line{}) {
			rep.MACOps++
			if c.NodeMAC(node, node.FValue()) != node.HMAC() {
				if !degraded {
					return nil, memctrl.TamperAt("strict leaf", 0, idx, "self-seal HMAC mismatch")
				}
				// The persisted image is damaged: fall back to the data
				// blocks, which carry their own MACs and hints. The rebuilt
				// leaf is resealed and re-persisted — strict-persistence
				// schemes keep their leaf images current in NVM.
				rebuilt, err := LeafFromData(c, rep, rec, idx, node, degraded)
				if err != nil {
					return nil, err
				}
				rebuilt.SetHMAC(c.NodeMAC(rebuilt, rebuilt.FValue()))
				rep.MACOps++
				c.Device().Poke(geo.NodeAddr(0, idx), nvmem.Line(rebuilt.Encode()))
				rep.NVMWrites++
				rep.NodesRecovered++
				node = rebuilt
			}
		}
		rec.Leaves[idx] = node
		rec.Total += node.FValue()
	}
	return rec, nil
}

// CheckRegister arbitrates the reconstructed leaf total against the
// scheme's on-chip recovery register — a conservation law over every
// counter increment the runtime ever applied. Because the leaf totals are
// exact (MAC-proven or hint-pinned) up to the recorded Unpinnable blocks,
// the policy is:
//
//   - Evidence-free damage anywhere (AttackShaped > 0): an active adversary
//     touched durable state; fail closed and condemn the whole tree, even
//     if the totals balance — a forged hint could cancel a replay deficit.
//   - Residual with no unpinnable block: stale authentic state was replayed
//     somewhere among the MAC-verified blocks; it cannot be localised, so
//     condemn the whole tree.
//   - Residual with unpinnable blocks: genuine double media destruction
//     made the total unknowable; the damaged coverage is already
//     quarantined under its media verdict, and the mismatch is forgiven
//     (the evidence behind it is unforgeable). This is the documented
//     residual-risk window: a replay timed into the same crash as a double
//     destruction hides, but the attacker cannot cause the destruction.
//
// The returned register value is what the scheme should carry forward:
// unchanged on an exact match or strict error, resynced to the rebuilt
// total whenever recovery proceeds past a mismatch (the quarantine records
// are the durable memory of the event; resyncing makes the next crash's
// conservation law exact again instead of re-condemning a fenced tree).
func CheckRegister(c *memctrl.Controller, rep *memctrl.RecoveryReport, rec *LeafRecovery, register uint64, degraded bool) (uint64, error) {
	if rec.Total == register && rec.AttackShaped == 0 {
		return register, nil
	}
	if !degraded {
		if rec.Total != register {
			return register, memctrl.ReplayAt("leaf level", 0, 0,
				fmt.Sprintf("leaf sum %d != recovery register %d", rec.Total, register))
		}
		return register, nil
	}
	if rec.Total != register && rec.Unpinnable > 0 && rec.AttackShaped == 0 {
		return rec.Total, nil
	}
	detail := fmt.Sprintf("leaf sum %d != recovery register %d", rec.Total, register)
	if rec.AttackShaped > 0 {
		detail = fmt.Sprintf("%d evidence-free damaged blocks; leaf sum %d, recovery register %d",
			rec.AttackShaped, rec.Total, register)
	}
	rec.Fenced = true
	c.QuarantineAll(memctrl.CauseReplayShaped, detail, &rep.Degradation)
	return rec.Total, nil
}

// WriteBack rebuilds every interior level by summation over the recovered
// leaves, reseals each node under its generated parent counter, persists
// the result and installs the top-level counters in the on-chip root. With
// writeLeaves the leaf level itself is also resealed and persisted (schemes
// whose leaves were reconstructed rather than read); without it the leaf
// images in NVM are already current and only levels >= 1 are written.
func WriteBack(c *memctrl.Controller, rep *memctrl.RecoveryReport, leaves []*sit.Node, writeLeaves bool) {
	geo := &c.Layout().Geo
	levels := make([][]*sit.Node, geo.Levels)
	levels[0] = leaves
	for k := 1; k < geo.Levels; k++ {
		levels[k] = make([]*sit.Node, geo.LevelNodes[k])
		for idx := range levels[k] {
			n := &sit.Node{Level: k, Index: uint64(idx)}
			for i := 0; i < counter.Arity; i++ {
				ci := uint64(idx)*counter.Arity + uint64(i)
				if ci < uint64(len(levels[k-1])) {
					n.SetCounter(i, levels[k-1][ci].FValue())
				}
			}
			levels[k][idx] = n
		}
	}
	start := 0
	if !writeLeaves {
		start = 1
	}
	for k := start; k < geo.Levels; k++ {
		for idx, n := range levels[k] {
			n.SetHMAC(c.NodeMAC(n, n.FValue()))
			rep.MACOps++
			c.Device().Poke(geo.NodeAddr(k, uint64(idx)), nvmem.Line(n.Encode()))
			rep.NVMWrites++
			rep.NodesRecovered++
			if geo.IsTop(k) {
				c.Root().SetCounter(uint64(idx), n.FValue())
			}
			c.FaultEvent(memctrl.EvRecoveryStep, geo.NodeAddr(k, uint64(idx)))
		}
	}
	// With the leaf level kept in place its top-level ancestors still must
	// land in the root; geo.Levels == 1 (single-level trees) hits this.
	if !writeLeaves && geo.Levels == 1 {
		for idx, n := range levels[0] {
			c.Root().SetCounter(uint64(idx), n.FValue())
		}
	}
}

// Cost folds the recovery work into the §IV-D nanosecond model.
func Cost(c *memctrl.Controller, rep *memctrl.RecoveryReport) {
	cfg := c.Config()
	rep.TimeNS = float64(rep.NVMReads)*cfg.RecoveryReadNS +
		float64(rep.NVMWrites)*cfg.RecoveryWriteNS +
		float64(rep.MACOps)*cfg.RecoveryHashNS
}
