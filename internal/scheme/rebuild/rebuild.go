// Package rebuild implements bottom-up integrity-tree reconstruction for
// the generated-counter (CounterGen) scheme family. Any scheme whose parent
// counters are derived from child contents (Eq. 1/Eq. 2) can rebuild every
// interior level by summation once the leaf level is trusted; the packages
// scue, pipesit and triad differ only in HOW the leaf level is recovered
// (Osiris-style search over data blocks vs. reading strictly-persisted leaf
// images) and in what runtime state survives the crash.
//
// The helpers here keep the recovery accounting (NVMReads/NVMWrites/MACOps/
// NodesRecovered and the §IV-D nanosecond cost model) identical across the
// family, so cross-scheme recovery comparisons measure the designs, not
// bookkeeping drift. All paths are read-only until WriteBack and therefore
// restartable: a mid-recovery re-crash simply reruns them from scratch.
package rebuild

import (
	"fmt"

	"steins/internal/counter"
	"steins/internal/memctrl"
	"steins/internal/nvmem"
	"steins/internal/sit"
)

// LeavesFromData reconstructs every leaf node from its covered data blocks
// (SCUE §II-D): each block's counter is searched from the stale leaf image
// through the CME recovery window until the block's tag verifies. Cost
// scales with data capacity. With degraded set, an unmatchable leaf is
// quarantined and its stale (authentic but possibly old) counters carried,
// keeping the interior summation well-defined; otherwise the integrity
// error aborts recovery.
func LeavesFromData(c *memctrl.Controller, rep *memctrl.RecoveryReport, degraded bool) ([]*sit.Node, uint64, error) {
	geo := &c.Layout().Geo
	eng := c.Engine()
	leaves := make([]*sit.Node, geo.LevelNodes[0])
	var total uint64
	for idx := uint64(0); idx < geo.LevelNodes[0]; idx++ {
		rep.NVMReads++ // stale leaf
		stale := c.StaleNode(0, idx)
		node := &sit.Node{Level: 0, Index: idx, IsSplit: geo.SplitLeaf}
		var lerr error
		if node.IsSplit {
			lerr = splitLeafFromData(c, rep, node, stale)
		} else {
			for i := 0; i < int(geo.LeafCover); i++ {
				daddr := geo.DataAddr(idx, i)
				rep.NVMReads++
				ct := [64]byte(c.Device().Peek(daddr))
				ctr, macOps, ok := eng.RecoverCounterGC(&ct, daddr, c.Tag(daddr), stale.Counter(i))
				rep.MACOps += macOps
				if !ok {
					lerr = memctrl.TamperData(daddr, "during tree rebuild")
					break
				}
				node.SetCounter(i, ctr)
			}
		}
		if lerr != nil {
			if degraded {
				// The leaf's covered blocks cannot all be matched to a
				// counter: fence off its coverage and carry the stale
				// counters so the interior summation stays well-defined.
				c.QuarantineSubtree(0, idx, &rep.Degradation)
				leaves[idx] = stale
				total += stale.FValue()
				continue
			}
			return nil, 0, lerr
		}
		total += node.FValue()
		leaves[idx] = node
	}
	return leaves, total, nil
}

// splitLeafFromData reconstructs one split-counter leaf: every covered
// block's minor is searched under a consistent major taken from the tags.
func splitLeafFromData(c *memctrl.Controller, rep *memctrl.RecoveryReport, node, stale *sit.Node) error {
	geo := &c.Layout().Geo
	eng := c.Engine()
	major := stale.Split.Major
	have := false
	for i := 0; i < counter.SplitArity; i++ {
		daddr := geo.DataAddr(node.Index, i)
		rep.NVMReads++
		ct := [64]byte(c.Device().Peek(daddr))
		tag := c.Tag(daddr)
		if !tag.Written {
			continue
		}
		if !have {
			major, have = tag.Hint, true
		} else if tag.Hint != major {
			return memctrl.ReplayAt("split leaf", 0, node.Index, "inconsistent majors")
		}
		m, minor, macOps, ok := eng.RecoverCounterSC(&ct, daddr, tag, stale.Split.Minor[i])
		rep.MACOps += macOps
		if !ok || m != major {
			return memctrl.TamperData(daddr, "during tree rebuild")
		}
		node.Split.Minor[i] = minor
	}
	node.Split.Major = major
	return nil
}

// LeavesFromNVM reads every leaf's current NVM image and checks its
// self-seal: a generated-counter leaf that is persisted strictly (written
// through on every modification, Triad-NVM style) carries an HMAC under its
// own FValue, so tampering with counters or MAC is detected per leaf, and
// replay of an authentic old image is caught by the caller's register check
// on the returned total. Cost scales with the tree, not the data capacity.
func LeavesFromNVM(c *memctrl.Controller, rep *memctrl.RecoveryReport, degraded bool) ([]*sit.Node, uint64, error) {
	geo := &c.Layout().Geo
	leaves := make([]*sit.Node, geo.LevelNodes[0])
	var total uint64
	for idx := uint64(0); idx < geo.LevelNodes[0]; idx++ {
		rep.NVMReads++
		node := c.StaleNode(0, idx)
		// An all-zero line is the valid initial state of a never-flushed
		// leaf (cf. Controller.VerifyNodeLine).
		if line := c.Device().Peek(geo.NodeAddr(0, idx)); line != (nvmem.Line{}) {
			rep.MACOps++
			if c.NodeMAC(node, node.FValue()) != node.HMAC() {
				if degraded {
					c.QuarantineSubtree(0, idx, &rep.Degradation)
					leaves[idx] = node
					total += node.FValue()
					continue
				}
				return nil, 0, memctrl.TamperAt("strict leaf", 0, idx, "self-seal HMAC mismatch")
			}
		}
		total += node.FValue()
		leaves[idx] = node
	}
	return leaves, total, nil
}

// CheckRegister compares the reconstructed leaf total with the scheme's
// on-chip recovery register. With quarantined leaves in the sum their true
// counters are unknown, so the equality cannot be checked exactly.
func CheckRegister(rep *memctrl.RecoveryReport, total, register uint64) error {
	if total != register && len(rep.Degradation.Quarantined) == 0 {
		return memctrl.ReplayAt("leaf level", 0, 0,
			fmt.Sprintf("leaf sum %d != recovery register %d", total, register))
	}
	return nil
}

// WriteBack rebuilds every interior level by summation over the recovered
// leaves, reseals each node under its generated parent counter, persists
// the result and installs the top-level counters in the on-chip root. With
// writeLeaves the leaf level itself is also resealed and persisted (schemes
// whose leaves were reconstructed rather than read); without it the leaf
// images in NVM are already current and only levels >= 1 are written.
func WriteBack(c *memctrl.Controller, rep *memctrl.RecoveryReport, leaves []*sit.Node, writeLeaves bool) {
	geo := &c.Layout().Geo
	levels := make([][]*sit.Node, geo.Levels)
	levels[0] = leaves
	for k := 1; k < geo.Levels; k++ {
		levels[k] = make([]*sit.Node, geo.LevelNodes[k])
		for idx := range levels[k] {
			n := &sit.Node{Level: k, Index: uint64(idx)}
			for i := 0; i < counter.Arity; i++ {
				ci := uint64(idx)*counter.Arity + uint64(i)
				if ci < uint64(len(levels[k-1])) {
					n.SetCounter(i, levels[k-1][ci].FValue())
				}
			}
			levels[k][idx] = n
		}
	}
	start := 0
	if !writeLeaves {
		start = 1
	}
	for k := start; k < geo.Levels; k++ {
		for idx, n := range levels[k] {
			n.SetHMAC(c.NodeMAC(n, n.FValue()))
			rep.MACOps++
			c.Device().Poke(geo.NodeAddr(k, uint64(idx)), nvmem.Line(n.Encode()))
			rep.NVMWrites++
			rep.NodesRecovered++
			if geo.IsTop(k) {
				c.Root().SetCounter(uint64(idx), n.FValue())
			}
			c.FaultEvent(memctrl.EvRecoveryStep, geo.NodeAddr(k, uint64(idx)))
		}
	}
	// With the leaf level kept in place its top-level ancestors still must
	// land in the root; geo.Levels == 1 (single-level trees) hits this.
	if !writeLeaves && geo.Levels == 1 {
		for idx, n := range levels[0] {
			c.Root().SetCounter(uint64(idx), n.FValue())
		}
	}
}

// Cost folds the recovery work into the §IV-D nanosecond model.
func Cost(c *memctrl.Controller, rep *memctrl.RecoveryReport) {
	cfg := c.Config()
	rep.TimeNS = float64(rep.NVMReads)*cfg.RecoveryReadNS +
		float64(rep.NVMWrites)*cfg.RecoveryWriteNS +
		float64(rep.MACOps)*cfg.RecoveryHashNS
}
