// Package wb implements the Write Back baseline scheme (§IV): the general
// CME + SIT secure memory with lazy updates and no recovery support.
// Modified metadata reaches NVM only through cache replacement, so a crash
// loses every dirty node irrecoverably — WB is the performance baseline the
// paper normalises Figs. 9-16 against.
package wb

import (
	"steins/internal/cache"
	"steins/internal/memctrl"
	"steins/internal/sit"
)

// Policy is the WB scheme.
type Policy struct {
	c *memctrl.Controller
}

// Factory builds a WB policy; pass to memctrl.New.
func Factory(c *memctrl.Controller) memctrl.Policy { return &Policy{c: c} }

// Name implements memctrl.Policy.
func (p *Policy) Name() string {
	if p.c.Config().SplitLeaf {
		return "WB-SC"
	}
	return "WB-GC"
}

// CounterGen implements memctrl.Policy: WB uses classic self-increment.
func (p *Policy) CounterGen() bool { return false }

// OnModify implements memctrl.Policy: WB tracks nothing.
func (p *Policy) OnModify(*cache.Entry[*sit.Node], bool, uint64) uint64 { return 0 }

// EvictDirty implements memctrl.Policy with the classic SIT write-back.
func (p *Policy) EvictDirty(victim *sit.Node) (uint64, error) {
	return p.c.ClassicEvict(victim)
}

// BeforeRead implements memctrl.Policy.
func (p *Policy) BeforeRead() (uint64, error) { return 0, nil }

// ParentCounterOverride implements memctrl.Policy.
func (p *Policy) ParentCounterOverride(int, uint64) (uint64, bool) { return 0, false }

// OnCrash implements memctrl.Policy: nothing survives but NVM itself.
func (p *Policy) OnCrash() {}

// Recover implements memctrl.Policy: WB cannot recover (§IV-D, Fig. 17).
func (p *Policy) Recover() (memctrl.RecoveryReport, error) {
	return memctrl.RecoveryReport{Scheme: p.Name()}, memctrl.ErrNoRecovery
}

// Storage implements memctrl.Policy: just the tree.
func (p *Policy) Storage() memctrl.StorageOverhead {
	lay := p.c.Layout()
	return memctrl.StorageOverhead{
		TreeBytes:      lay.Geo.MetaBytes,
		LeafCoverBytes: lay.Geo.LeafCover * 64,
	}
}
