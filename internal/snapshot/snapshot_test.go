package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"reflect"
	"strings"
	"testing"

	"steins/internal/metrics"
	"steins/internal/nvmem"
	"steins/internal/sim"
	"steins/internal/trace"
)

// testHeader is a small run: every scheme resolves it identically, the
// metrics collector is attached, and the metadata cache is tight enough
// that snapshots capture real dirty state.
func testHeader(scheme string, channels, ops int) RunHeader {
	return RunHeader{
		Workload:       "conformance-snap",
		Scheme:         scheme,
		TotalOps:       ops,
		WarmupOps:      ops / 10,
		Seed:           42,
		MetaCacheBytes: 16 << 10,
		Channels:       channels,
		EpochOps:       256,
		HasMetrics:     true,
		Metrics:        metrics.Options{SampleEvery: 16, RingCap: 64},
	}
}

// faultHeader enables the seeded media-fault model so the captured state
// must include the device RNG stream and stuck-cell overlays.
func faultHeader(scheme string, channels, ops int) RunHeader {
	h := testHeader(scheme, channels, ops)
	h.Faults = nvmem.FaultConfig{
		Seed:             7,
		TransientPerRead: 1e-3,
		DoubleBitFrac:    0.25,
		StuckPerWrite:    1e-4,
	}
	return h
}

func init() {
	// The test workload is registered once so RunHeader.Resume can resolve
	// it by name in the "fresh process" role.
	trace.Register(trace.Profile{
		Name:           "conformance-snap",
		FootprintBytes: 128 << 10,
		WriteFrac:      0.6,
		GapMean:        12,
		Pattern:        trace.Zipf,
	})
}

// straightSingle runs the header's configuration uninterrupted on the
// single engine and returns the result plus its metrics JSON.
func straightSingle(t *testing.T, h RunHeader) (sim.Result, []byte) {
	t.Helper()
	prof, _ := trace.ByName(h.Workload)
	s, ok := sim.SchemeByName(h.Scheme)
	if !ok {
		t.Fatalf("unknown scheme %q", h.Scheme)
	}
	opt, _ := h.Options()
	e := sim.NewSingle(prof, s, opt)
	if _, err := e.DriveN(trace.New(prof, opt.Seed, opt.WarmupOps+opt.Ops), -1); err != nil {
		t.Fatalf("straight drive: %v", err)
	}
	res := e.Result()
	return res, metricsJSON(t, res)
}

func metricsJSON(t *testing.T, res sim.Result) []byte {
	t.Helper()
	if res.Snapshot == nil {
		t.Fatalf("run produced no metrics snapshot")
	}
	var buf bytes.Buffer
	if err := res.Snapshot.EncodeJSON(&buf); err != nil {
		t.Fatalf("encode metrics: %v", err)
	}
	return buf.Bytes()
}

// checkpointSingle drives the run to the bound, round-trips the state
// through the wire format, resumes, drives to completion, and returns the
// resumed result.
func checkpointSingle(t *testing.T, h RunHeader, bound int) (sim.Result, []byte) {
	t.Helper()
	prof, _ := trace.ByName(h.Workload)
	s, _ := sim.SchemeByName(h.Scheme)
	opt, _ := h.Options()
	e := sim.NewSingle(prof, s, opt)
	g := trace.New(prof, opt.Seed, opt.WarmupOps+opt.Ops)
	if _, err := e.DriveN(g, bound); err != nil {
		t.Fatalf("drive to bound %d: %v", bound, err)
	}
	st, err := CaptureSingle(h, g, e)
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	r := resumeViaWire(t, st)
	if r.Single == nil {
		t.Fatalf("resumed engine is not single")
	}
	if got := r.Driven(); got != uint64(bound) {
		t.Fatalf("resumed at %d ops, captured at %d", got, bound)
	}
	if _, err := r.Single.DriveN(r.Gen, -1); err != nil {
		t.Fatalf("drive remainder: %v", err)
	}
	res := r.Single.Result()
	return res, metricsJSON(t, res)
}

// resumeViaWire serializes, deserializes, and resumes — the full
// cross-process path, minus the process boundary.
func resumeViaWire(t *testing.T, st *RunState) *Resumed {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, st); err != nil {
		t.Fatalf("write: %v", err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	r, err := back.Resume()
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	return r
}

// compareResults asserts bit-exact equivalence: the comparable result
// fields and the serialized metrics JSON byte for byte.
func compareResults(t *testing.T, label string, want, got sim.Result, wantJSON, gotJSON []byte) {
	t.Helper()
	w, g := want, got
	w.Snapshot, g.Snapshot = nil, nil
	if !reflect.DeepEqual(w, g) {
		t.Errorf("%s: results diverge\nstraight %+v\nresumed  %+v", label, w, g)
	}
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Errorf("%s: metrics JSON diverges (%d vs %d bytes)", label, len(wantJSON), len(gotJSON))
	}
}

// TestRoundTripSingleAllSchemes checkpoints every scheme mid-run (before,
// at, and after the warm-up boundary) and requires the resumed run to be
// bit-identical to the uninterrupted one.
func TestRoundTripSingleAllSchemes(t *testing.T) {
	for _, s := range []string{"WB-GC", "WB-SC", "ASIT", "STAR", "Steins-GC", "Steins-SC", "SCUE-GC", "SCUE-SC"} {
		s := s
		t.Run(s, func(t *testing.T) {
			t.Parallel()
			h := testHeader(s, 1, 2000)
			want, wantJSON := straightSingle(t, h)
			for _, bound := range []int{1, h.WarmupOps, h.WarmupOps + 777, h.WarmupOps + h.TotalOps} {
				got, gotJSON := checkpointSingle(t, h, bound)
				compareResults(t, fmt.Sprintf("bound %d", bound), want, got, wantJSON, gotJSON)
			}
		})
	}
}

// TestRoundTripSingleFaultSeed repeats the round trip under an active
// media-fault seed: the device RNG stream, stuck-cell overlays and ECC
// counters must all survive the snapshot for the tail to replay bit-exact.
func TestRoundTripSingleFaultSeed(t *testing.T) {
	for _, s := range []string{"Steins-GC", "SCUE-SC", "STAR"} {
		s := s
		t.Run(s, func(t *testing.T) {
			t.Parallel()
			h := faultHeader(s, 1, 2000)
			want, wantJSON := straightSingle(t, h)
			got, gotJSON := checkpointSingle(t, h, h.WarmupOps+313)
			compareResults(t, "fault seed", want, got, wantJSON, gotJSON)
		})
	}
}

// shardedJSON encodes the sharded system snapshot.
func shardedJSON(t *testing.T, res sim.ShardedResult) []byte {
	t.Helper()
	if res.System == nil {
		t.Fatalf("sharded run produced no system snapshot")
	}
	var buf bytes.Buffer
	if err := res.System.EncodeJSON(&buf); err != nil {
		t.Fatalf("encode system snapshot: %v", err)
	}
	return buf.Bytes()
}

// TestRoundTripSharded checkpoints sharded runs (2 and 4 channels, with
// and without a fault seed) at an epoch barrier and requires bit-identical
// merged results and system metrics JSON.
func TestRoundTripSharded(t *testing.T) {
	for _, tc := range []struct {
		scheme   string
		channels int
		faults   bool
	}{
		{"Steins-GC", 2, false},
		{"Steins-SC", 4, false},
		{"ASIT", 2, true},
	} {
		tc := tc
		t.Run(fmt.Sprintf("%s-%dch-faults=%v", tc.scheme, tc.channels, tc.faults), func(t *testing.T) {
			t.Parallel()
			h := testHeader(tc.scheme, tc.channels, 3000)
			if tc.faults {
				h = faultHeader(tc.scheme, tc.channels, 3000)
			}
			prof, _ := trace.ByName(h.Workload)
			s, _ := sim.SchemeByName(h.Scheme)
			opt, so := h.Options()

			straight := sim.NewSharded(prof, s, opt, so)
			if err := straight.DriveStream(trace.New(prof, opt.Seed, opt.WarmupOps+opt.Ops)); err != nil {
				t.Fatalf("straight drive: %v", err)
			}
			want := straight.Result()
			wantJSON := shardedJSON(t, want)

			e := sim.NewSharded(prof, s, opt, so)
			g := trace.New(prof, opt.Seed, opt.WarmupOps+opt.Ops)
			bound := h.WarmupOps + 1000
			if _, err := e.DriveStreamN(g, bound); err != nil {
				t.Fatalf("drive to bound: %v", err)
			}
			st, err := CaptureSharded(h, g, e)
			if err != nil {
				t.Fatalf("capture: %v", err)
			}
			r := resumeViaWire(t, st)
			if r.Sharded == nil {
				t.Fatalf("resumed engine is not sharded")
			}
			if _, err := r.Sharded.DriveStreamN(r.Gen, -1); err != nil {
				t.Fatalf("drive remainder: %v", err)
			}
			got := r.Sharded.Result()
			gotJSON := shardedJSON(t, got)
			compareResults(t, "merged", want.Merged, got.Merged, wantJSON, gotJSON)
			if len(want.Shards) != len(got.Shards) {
				t.Fatalf("shard count diverges: %d vs %d", len(want.Shards), len(got.Shards))
			}
			for k := range want.Shards {
				w, g := want.Shards[k], got.Shards[k]
				w.Snapshot, g.Snapshot = nil, nil
				if !reflect.DeepEqual(w, g) {
					t.Errorf("channel %d diverges\nstraight %+v\nresumed  %+v", k, w, g)
				}
			}
		})
	}
}

// TestRecoveryAfterResume crashes and recovers the resumed system and the
// straight system and requires identical recovery reports — the restored
// trees, dirty sets and device state must be equivalent, not just the
// metrics.
func TestRecoveryAfterResume(t *testing.T) {
	for _, scheme := range []string{"Steins-GC", "ASIT", "STAR", "SCUE-GC"} {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			t.Parallel()
			h := testHeader(scheme, 1, 1500)
			prof, _ := trace.ByName(h.Workload)
			s, _ := sim.SchemeByName(h.Scheme)
			opt, _ := h.Options()

			straight := sim.NewSingle(prof, s, opt)
			if _, err := straight.DriveN(trace.New(prof, opt.Seed, opt.WarmupOps+opt.Ops), -1); err != nil {
				t.Fatalf("straight drive: %v", err)
			}

			e := sim.NewSingle(prof, s, opt)
			g := trace.New(prof, opt.Seed, opt.WarmupOps+opt.Ops)
			if _, err := e.DriveN(g, h.WarmupOps+900); err != nil {
				t.Fatalf("drive to bound: %v", err)
			}
			st, err := CaptureSingle(h, g, e)
			if err != nil {
				t.Fatalf("capture: %v", err)
			}
			r := resumeViaWire(t, st)
			if _, err := r.Single.DriveN(r.Gen, -1); err != nil {
				t.Fatalf("drive remainder: %v", err)
			}

			for _, c := range []*sim.Single{straight, r.Single} {
				c.Controller().ForceAllDirty()
				c.Controller().Crash()
			}
			wantRep, wantErr := straight.Controller().Recover()
			gotRep, gotErr := r.Single.Controller().Recover()
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("recovery errors diverge: straight %v, resumed %v", wantErr, gotErr)
			}
			if !reflect.DeepEqual(wantRep, gotRep) {
				t.Errorf("recovery reports diverge\nstraight %+v\nresumed  %+v", wantRep, gotRep)
			}
		})
	}
}

// TestCaptureMidEvictionFails documents the retired-op-boundary contract:
// State is only legal between operations, and capturing a crashed
// controller still works (crash state is state).
func TestCaptureNotSupportedCases(t *testing.T) {
	h := testHeader("Steins-GC", 1, 100)
	prof, _ := trace.ByName(h.Workload)
	s, _ := sim.SchemeByName(h.Scheme)
	opt, _ := h.Options()
	e := sim.NewSingle(prof, s, opt)
	g := trace.New(prof, opt.Seed, opt.WarmupOps+opt.Ops)
	if _, err := e.DriveN(g, 50); err != nil {
		t.Fatalf("drive: %v", err)
	}
	if _, err := CaptureSingle(h, g, e); err != nil {
		t.Fatalf("capture at boundary should succeed: %v", err)
	}
}

// corrupt flips one bit near the middle of the payload.
func corrupt(b []byte) []byte {
	out := append([]byte(nil), b...)
	out[headerLen+len(out[headerLen:])/2] ^= 0x10
	return out
}

// TestReadRejectsMalformed is the negative table: truncated, bit-flipped
// and wrong-version snapshots must return errors wrapping the matching
// sentinel — and must never panic.
func TestReadRejectsMalformed(t *testing.T) {
	h := testHeader("Steins-GC", 1, 200)
	prof, _ := trace.ByName(h.Workload)
	s, _ := sim.SchemeByName(h.Scheme)
	opt, _ := h.Options()
	e := sim.NewSingle(prof, s, opt)
	g := trace.New(prof, opt.Seed, opt.WarmupOps+opt.Ops)
	if _, err := e.DriveN(g, 120); err != nil {
		t.Fatalf("drive: %v", err)
	}
	st, err := CaptureSingle(h, g, e)
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, st); err != nil {
		t.Fatalf("write: %v", err)
	}
	good := buf.Bytes()

	wrongVersion := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(wrongVersion[8:], Version+1)
	badMagic := append([]byte(nil), good...)
	badMagic[0] ^= 0xFF
	lyingLength := append([]byte(nil), good...)
	binary.LittleEndian.PutUint64(lyingLength[16:], 1<<40)
	wrongKind := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(wrongKind[12:], KindCampaign)

	for _, tc := range []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short header", good[:headerLen-1], ErrTruncated},
		{"truncated payload", good[:headerLen+7], ErrTruncated},
		{"declared length exceeds file", lyingLength, ErrTruncated},
		{"bad magic", badMagic, ErrBadMagic},
		{"wrong version", wrongVersion, ErrVersion},
		{"wrong payload kind", wrongKind, ErrCorrupt},
		{"bit flip in payload", corrupt(good), ErrChecksum},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			st, err := Read(bytes.NewReader(tc.data))
			if st != nil || err == nil {
				t.Fatalf("Read accepted malformed input (err=%v)", err)
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error %v does not wrap %v", err, tc.want)
			}
		})
	}
}

// TestResumeRejectsInconsistent covers payloads that pass the envelope but
// describe no loadable run.
func TestResumeRejectsInconsistent(t *testing.T) {
	for _, tc := range []struct {
		name string
		st   RunState
	}{
		{"no engine", RunState{Header: testHeader("Steins-GC", 1, 100)}},
		{"unknown workload", RunState{Header: func() RunHeader {
			h := testHeader("Steins-GC", 1, 100)
			h.Workload = "no-such-workload"
			return h
		}(), Single: &sim.SingleState{}}},
		{"unknown scheme", RunState{Header: func() RunHeader {
			h := testHeader("Steins-GC", 1, 100)
			h.Scheme = "no-such-scheme"
			return h
		}(), Single: &sim.SingleState{}}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if r, err := tc.st.Resume(); r != nil || !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Resume = (%v, %v), want ErrCorrupt", r, err)
			}
		})
	}
}

// TestSaveLoadFile exercises the file round trip.
func TestSaveLoadFile(t *testing.T) {
	h := testHeader("ASIT", 1, 300)
	prof, _ := trace.ByName(h.Workload)
	s, _ := sim.SchemeByName(h.Scheme)
	opt, _ := h.Options()
	e := sim.NewSingle(prof, s, opt)
	g := trace.New(prof, opt.Seed, opt.WarmupOps+opt.Ops)
	if _, err := e.DriveN(g, 200); err != nil {
		t.Fatalf("drive: %v", err)
	}
	st, err := CaptureSingle(h, g, e)
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	path := t.TempDir() + "/run.snap"
	if err := SaveFile(path, st); err != nil {
		t.Fatalf("save: %v", err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if back.Header != st.Header {
		t.Fatalf("header diverges after file round trip:\nsaved  %+v\nloaded %+v", st.Header, back.Header)
	}
	if _, err := back.Resume(); err != nil {
		t.Fatalf("resume from file: %v", err)
	}
}

// TestSaveFileAtomicReplace pins the atomic-replace contract: overwriting
// an existing checkpoint goes through a temp file + rename, so the
// directory never holds a partially-written file under the final name, no
// temp droppings survive a successful save, and a save into a missing
// directory fails with a structured error while leaving the previous
// checkpoint untouched.
func TestSaveFileAtomicReplace(t *testing.T) {
	h := testHeader("Triad-GC", 1, 300)
	prof, _ := trace.ByName(h.Workload)
	s, _ := sim.SchemeByName(h.Scheme)
	opt, _ := h.Options()
	e := sim.NewSingle(prof, s, opt)
	g := trace.New(prof, opt.Seed, opt.WarmupOps+opt.Ops)
	capture := func(drive int) *RunState {
		if _, err := e.DriveN(g, drive); err != nil {
			t.Fatalf("drive: %v", err)
		}
		st, err := CaptureSingle(h, g, e)
		if err != nil {
			t.Fatalf("capture: %v", err)
		}
		return st
	}
	dir := t.TempDir()
	path := dir + "/run.snap"
	if err := SaveFile(path, capture(100)); err != nil {
		t.Fatalf("first save: %v", err)
	}
	st2 := capture(100)
	if err := SaveFile(path, st2); err != nil {
		t.Fatalf("overwrite save: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "run.snap" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory holds %v after save, want only run.snap (no temp droppings)", names)
	}
	if _, err := LoadFile(path); err != nil {
		t.Fatalf("load after overwrite: %v", err)
	}
	var want bytes.Buffer
	if err := Write(&want, st2); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, want.Bytes()) {
		t.Fatal("overwritten file does not hold the newer checkpoint's bytes")
	}
	if err := SaveFile(dir+"/missing/run.snap", st2); err == nil {
		t.Fatal("save into a missing directory succeeded")
	} else if !strings.Contains(err.Error(), "snapshot:") {
		t.Fatalf("missing-directory error %q lacks the snapshot prefix", err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("failed save modified the existing checkpoint")
	}
}

// TestDeterministicBytes requires that capturing the same state twice
// yields byte-identical files — the sorted-slice flattening has no map
// iteration order leaking through.
func TestDeterministicBytes(t *testing.T) {
	h := faultHeader("Steins-SC", 1, 800)
	prof, _ := trace.ByName(h.Workload)
	s, _ := sim.SchemeByName(h.Scheme)
	opt, _ := h.Options()
	e := sim.NewSingle(prof, s, opt)
	g := trace.New(prof, opt.Seed, opt.WarmupOps+opt.Ops)
	if _, err := e.DriveN(g, 500); err != nil {
		t.Fatalf("drive: %v", err)
	}
	var a, b bytes.Buffer
	for _, w := range []*bytes.Buffer{&a, &b} {
		st, err := CaptureSingle(h, g, e)
		if err != nil {
			t.Fatalf("capture: %v", err)
		}
		if err := Write(w, st); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("two captures of the same state produced different bytes (%d vs %d)", a.Len(), b.Len())
	}
}
