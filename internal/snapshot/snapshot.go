// Package snapshot provides versioned, deterministic checkpoint/restore of
// a complete simulation: trace generator position, per-scheme metadata
// caches and dirty state, integrity-tree contents, ADR region, the NVM
// backing store including its media-fault RNG stream and stuck-cell
// overlays, controller clocks, and metrics state. A run restored from a
// snapshot and driven to completion produces byte-identical metrics JSON
// to the uninterrupted run, at any worker count and under any fault seed.
//
// On-disk format: an 8-byte magic, a little-endian uint32 format version,
// a little-endian uint64 payload length, a little-endian uint32 IEEE
// CRC-32 of the payload, then the gob-encoded RunState. Every map in the
// captured state is flattened to an address-sorted slice before encoding,
// so identical states produce identical bytes.
package snapshot

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"steins/internal/memctrl"
	"steins/internal/metrics"
	"steins/internal/nvmem"
	"steins/internal/sim"
	"steins/internal/trace"
)

// Version is the current snapshot format version. Readers reject any
// other version with ErrVersion.
const Version = 1

// magic identifies a snapshot file.
var magic = [8]byte{'S', 'T', 'E', 'I', 'N', 'S', 'N', 'P'}

// Payload kinds: the envelope carries which state family it wraps, so a
// crashfuzz campaign file cannot be silently resumed as a simulation run.
const (
	// KindRun is a RunState (a paused simulation).
	KindRun uint32 = 1
	// KindCampaign is a crashfuzz campaign (internal/crashfuzz owns the
	// payload encoding; the envelope is shared).
	KindCampaign uint32 = 2
	// KindAdversarial is an adversarial-campaign checkpoint
	// (internal/campaign owns the payload encoding).
	KindAdversarial uint32 = 3
	// KindRepro is a self-contained campaign repro artifact: one failing
	// case's scheme, seed and event schedule (internal/campaign owns the
	// payload encoding).
	KindRepro uint32 = 4
	// KindServer is a serving-layer checkpoint: every tenant's placement
	// groups and their channel controllers (see server.go).
	KindServer uint32 = 5
)

// headerLen is the fixed envelope prefix: magic + version + kind + length
// + CRC.
const headerLen = 8 + 4 + 4 + 8 + 4

// Structured decode failures. Every error returned by Read wraps exactly
// one of these, so callers can switch on errors.Is without string matching.
var (
	// ErrTruncated marks a file shorter than its envelope declares.
	ErrTruncated = errors.New("snapshot: truncated file")
	// ErrBadMagic marks a file that is not a snapshot at all.
	ErrBadMagic = errors.New("snapshot: bad magic")
	// ErrVersion marks a snapshot written by an incompatible format version.
	ErrVersion = errors.New("snapshot: unsupported format version")
	// ErrChecksum marks payload corruption caught by the CRC.
	ErrChecksum = errors.New("snapshot: checksum mismatch")
	// ErrCorrupt marks a payload that passed the CRC but failed to decode
	// (or decoded into an inconsistent state).
	ErrCorrupt = errors.New("snapshot: corrupt payload")
)

// RunHeader records the run configuration: everything needed to rebuild
// the engine and trace generator in a fresh process. Only scalar knobs are
// stored — the crypto primitives and fault model inside memctrl.Config are
// reconstructed from defaults plus the Faults/ECCDisable fields, so a run
// configured through an arbitrary Options.Configure closure beyond those
// knobs cannot be captured here.
type RunHeader struct {
	Workload string // trace.Profile name (trace.ByName)
	Scheme   string // scheme display name (sim.SchemeByName)

	TotalOps  int // measured ops (Options.Ops)
	WarmupOps int
	Seed      uint64
	DataBytes uint64 // 0: profile footprint times two

	MetaCacheBytes int

	// Sharded-engine shape; Channels <= 1 means the single engine.
	Channels            int
	Interleave          trace.Interleave
	EpochOps            int
	KeepCachePerChannel bool

	// Media-fault model and ECC gate, as passed to memctrl.Config.NVM.
	Faults     nvmem.FaultConfig
	ECCDisable bool

	// Metrics collection options; HasMetrics false means no collector.
	HasMetrics bool
	Metrics    metrics.Options
}

// Options rebuilds the engine options the header describes.
func (h RunHeader) Options() (sim.Options, sim.ShardOptions) {
	faults, eccDisable := h.Faults, h.ECCDisable
	opt := sim.Options{
		Ops:            h.TotalOps,
		WarmupOps:      h.WarmupOps,
		Seed:           h.Seed,
		DataBytes:      h.DataBytes,
		MetaCacheBytes: h.MetaCacheBytes,
		Configure: func(cfg *memctrl.Config) {
			cfg.NVM.Faults = faults
			cfg.NVM.ECC.Disable = eccDisable
		},
	}
	if h.HasMetrics {
		m := h.Metrics
		opt.Metrics = &m
	}
	so := sim.ShardOptions{
		Channels:            h.Channels,
		Interleave:          h.Interleave,
		EpochOps:            h.EpochOps,
		KeepCachePerChannel: h.KeepCachePerChannel,
	}
	return opt, so
}

// RunState is the complete serialized image of a paused run: the
// configuration, the trace generator position, and exactly one engine
// state (gob omits the nil pointer).
type RunState struct {
	Header  RunHeader
	Trace   trace.GeneratorState
	Single  *sim.SingleState
	Sharded *sim.ShardedState
}

// CaptureSingle snapshots a single-controller run. The engine must be at a
// retired-op boundary (DriveN returned with no eviction in flight).
func CaptureSingle(h RunHeader, g *trace.Generator, e *sim.Single) (*RunState, error) {
	es, err := e.State()
	if err != nil {
		return nil, err
	}
	return &RunState{Header: h, Trace: g.State(), Single: es}, nil
}

// CaptureSharded snapshots a sharded run. The engine must be at an epoch
// barrier (DriveStreamN returned).
func CaptureSharded(h RunHeader, g *trace.Generator, e *sim.Sharded) (*RunState, error) {
	es, err := e.State()
	if err != nil {
		return nil, err
	}
	return &RunState{Header: h, Trace: g.State(), Sharded: es}, nil
}

// Resumed is a run rebuilt from a snapshot, ready to drive to completion.
// Exactly one of Single/Sharded is non-nil, matching the captured engine.
type Resumed struct {
	Profile trace.Profile
	Scheme  sim.Scheme
	Gen     *trace.Generator
	Single  *sim.Single
	Sharded *sim.Sharded
}

// Driven returns how many source ops the captured run had already driven.
func (r *Resumed) Driven() uint64 {
	if r.Single != nil {
		return r.Single.Driven()
	}
	return r.Sharded.Driven()
}

// Resume rebuilds the run the state describes: the profile and scheme are
// resolved by name, the engine reconstructed from the header knobs, and
// every layer restored. Failures wrap ErrCorrupt — the envelope was intact
// but the payload does not describe a loadable run.
func (st *RunState) Resume() (*Resumed, error) {
	h := st.Header
	prof, ok := trace.ByName(h.Workload)
	if !ok {
		return nil, fmt.Errorf("%w: unknown workload %q", ErrCorrupt, h.Workload)
	}
	s, ok := sim.SchemeByName(h.Scheme)
	if !ok {
		return nil, fmt.Errorf("%w: unknown scheme %q", ErrCorrupt, h.Scheme)
	}
	opt, so := h.Options()
	g := trace.New(prof, opt.Seed, opt.WarmupOps+opt.Ops)
	g.Restore(st.Trace)
	r := &Resumed{Profile: prof, Scheme: s, Gen: g}
	switch {
	case st.Single != nil && st.Sharded == nil:
		e := sim.NewSingle(prof, s, opt)
		if err := e.Restore(st.Single); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		r.Single = e
	case st.Sharded != nil && st.Single == nil:
		e := sim.NewSharded(prof, s, opt, so)
		if err := e.Restore(st.Sharded); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		r.Sharded = e
	default:
		return nil, fmt.Errorf("%w: state carries %d engines, want exactly 1", ErrCorrupt,
			btoi(st.Single != nil)+btoi(st.Sharded != nil))
	}
	return r, nil
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

// WriteEnvelope wraps an already-encoded payload of the given kind in the
// versioned, checksummed envelope. Other packages (crashfuzz) reuse it for
// their own snapshot families.
func WriteEnvelope(w io.Writer, kind uint32, payload []byte) error {
	hdr := make([]byte, headerLen)
	copy(hdr, magic[:])
	binary.LittleEndian.PutUint32(hdr[8:], Version)
	binary.LittleEndian.PutUint32(hdr[12:], kind)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[24:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("snapshot: write header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("snapshot: write payload: %w", err)
	}
	return nil
}

// ReadEnvelope validates the envelope and returns the payload bytes. It
// never panics on malformed input; every failure wraps one of the Err*
// sentinels (a kind mismatch wraps ErrCorrupt: the envelope was intact but
// wraps a different state family).
func ReadEnvelope(r io.Reader, kind uint32) ([]byte, error) {
	hdr := make([]byte, headerLen)
	if n, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("%w: %d-byte header, want %d", ErrTruncated, n, headerLen)
	}
	if !bytes.Equal(hdr[:8], magic[:]) {
		return nil, fmt.Errorf("%w: %q", ErrBadMagic, hdr[:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != Version {
		return nil, fmt.Errorf("%w: file is v%d, reader is v%d", ErrVersion, v, Version)
	}
	if k := binary.LittleEndian.Uint32(hdr[12:]); k != kind {
		return nil, fmt.Errorf("%w: payload kind %d, want %d", ErrCorrupt, k, kind)
	}
	plen := binary.LittleEndian.Uint64(hdr[16:])
	// LimitReader bounds the allocation to what the stream actually holds,
	// so an absurd declared length on a tiny file fails as truncated
	// instead of attempting a huge allocation.
	payload, err := io.ReadAll(io.LimitReader(r, int64(plen)))
	if err != nil {
		return nil, fmt.Errorf("%w: reading payload: %v", ErrTruncated, err)
	}
	if uint64(len(payload)) != plen {
		return nil, fmt.Errorf("%w: payload is %d bytes, envelope declares %d", ErrTruncated, len(payload), plen)
	}
	if sum := crc32.ChecksumIEEE(payload); sum != binary.LittleEndian.Uint32(hdr[24:]) {
		return nil, fmt.Errorf("%w: payload CRC %#x, envelope declares %#x",
			ErrChecksum, sum, binary.LittleEndian.Uint32(hdr[24:]))
	}
	return payload, nil
}

// Write serializes the state to w in the envelope format.
func Write(w io.Writer, st *RunState) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(st); err != nil {
		return fmt.Errorf("snapshot: encode: %w", err)
	}
	return WriteEnvelope(w, KindRun, payload.Bytes())
}

// Read deserializes one snapshot from r, validating the envelope. Decode
// failures return errors wrapping the Err* sentinels; Read never panics on
// malformed input.
func Read(r io.Reader) (*RunState, error) {
	payload, err := ReadEnvelope(r, KindRun)
	if err != nil {
		return nil, err
	}
	st := new(RunState)
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(st); err != nil {
		return nil, fmt.Errorf("%w: gob decode: %v", ErrCorrupt, err)
	}
	return st, nil
}

// SaveFile writes the state to path, replacing any existing file
// atomically: the bytes go to a temporary file in the same directory and
// are renamed over path only once fully written, so a crash or kill
// mid-save can never destroy the previous good checkpoint — the whole
// point of keeping one.
func SaveFile(path string, st *RunState) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	tmp := f.Name()
	if err := Write(f, st); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("snapshot: %w", err)
	}
	// CreateTemp opens 0600; keep the 0644 the plain-create path used.
	if err := os.Chmod(tmp, 0o644); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("snapshot: %w", err)
	}
	return nil
}

// LoadFile reads one snapshot from path.
func LoadFile(path string) (*RunState, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	defer f.Close()
	return Read(f)
}
