package snapshot_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"steins/internal/memctrl"
	"steins/internal/scheme/steins"
	"steins/internal/snapshot"
)

// serverStateFixture builds a two-tenant server state from live
// controllers so the payload exercises the full ControllerState surface.
func serverStateFixture(t *testing.T) *snapshot.ServerState {
	t.Helper()
	mk := func(seed byte) memctrl.ControllerState {
		c := memctrl.New(memctrl.DefaultConfig(64<<10, true), steins.Factory)
		for i := 0; i < 40; i++ {
			var b [64]byte
			b[0], b[1] = seed, byte(i)
			if err := c.WriteData(1, uint64(i%32)*64, b); err != nil {
				t.Fatal(err)
			}
		}
		st, err := c.State()
		if err != nil {
			t.Fatal(err)
		}
		return *st
	}
	return &snapshot.ServerState{Tenants: []snapshot.TenantState{
		{Name: "alice", Scheme: "Steins-SC", AppliedSeq: 40,
			PGs: []snapshot.PGState{{Channels: []memctrl.ControllerState{mk(1), mk(2)}}}},
		{Name: "bob", Scheme: "Steins-SC", AppliedSeq: 40,
			PGs: []snapshot.PGState{{Channels: []memctrl.ControllerState{mk(3)}}}},
	}}
}

// Identical server states must encode to identical bytes (the restart
// differential tests byte-compare checkpoints), and the round trip must
// preserve the full structure.
func TestServerStateDeterministicRoundTrip(t *testing.T) {
	st := serverStateFixture(t)
	a, err := snapshot.EncodeServer(st)
	if err != nil {
		t.Fatal(err)
	}
	b, err := snapshot.EncodeServer(st)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("identical server states encoded to different bytes")
	}
	back, err := snapshot.DecodeServer(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Tenants) != 2 || back.Tenants[0].Name != "alice" || back.Tenants[1].Name != "bob" {
		t.Fatalf("round trip lost tenants: %+v", back.Tenants)
	}
	if len(back.Tenants[0].PGs[0].Channels) != 2 || back.Tenants[0].AppliedSeq != 40 {
		t.Fatalf("round trip lost PG shape: %+v", back.Tenants[0])
	}
	reencoded, err := snapshot.EncodeServer(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, reencoded) {
		t.Fatal("decode∘encode is not the identity")
	}
}

// Malformed server checkpoints must be rejected with the envelope
// sentinels — truncation, bit flips, and a wrong payload kind — and never
// decode to a half-valid state.
func TestServerStateNegative(t *testing.T) {
	good, err := snapshot.EncodeServer(serverStateFixture(t))
	if err != nil {
		t.Fatal(err)
	}

	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{0, 4, len(good) / 2, len(good) - 1} {
			if _, err := snapshot.DecodeServer(bytes.NewReader(good[:n])); err == nil {
				t.Fatalf("truncation to %d bytes accepted", n)
			}
		}
	})
	t.Run("bitflip", func(t *testing.T) {
		for _, pos := range []int{1, 9, 20, len(good) - 3} {
			bad := append([]byte(nil), good...)
			bad[pos] ^= 0x40
			if _, err := snapshot.DecodeServer(bytes.NewReader(bad)); err == nil {
				t.Fatalf("bit flip at %d accepted", pos)
			}
		}
	})
	t.Run("wrong-kind", func(t *testing.T) {
		var buf bytes.Buffer
		if err := snapshot.WriteEnvelope(&buf, snapshot.KindRepro, []byte("not a server state")); err != nil {
			t.Fatal(err)
		}
		_, err := snapshot.DecodeServer(bytes.NewReader(buf.Bytes()))
		if !errors.Is(err, snapshot.ErrCorrupt) {
			t.Fatalf("wrong kind: err = %v, want ErrCorrupt", err)
		}
	})
}

// SaveServerFile must be atomic: a save over an existing checkpoint either
// fully replaces it or leaves the old bytes intact, and the 0644 mode is
// preserved.
func TestSaveServerFileAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "server.state")
	st := serverStateFixture(t)
	if err := snapshot.SaveServerFile(path, st); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	st.Tenants[0].AppliedSeq = 99
	if err := snapshot.SaveServerFile(path, st); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(first, second) {
		t.Fatal("second save did not replace the checkpoint")
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o644 {
		t.Fatalf("mode = %v, want 0644", info.Mode().Perm())
	}
	back, err := snapshot.LoadServerFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Tenants[0].AppliedSeq != 99 {
		t.Fatalf("loaded AppliedSeq = %d, want 99", back.Tenants[0].AppliedSeq)
	}
	// Leftover temp files would mean a failed cleanup path.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries after saves, want 1", len(entries))
	}
}
