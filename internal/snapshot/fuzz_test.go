package snapshot

import (
	"bytes"
	"reflect"
	"testing"

	"steins/internal/sim"
	"steins/internal/trace"
)

// fuzzSchemes indexes the canonical schemes for the fuzzer.
var fuzzSchemes = []string{
	"WB-GC", "WB-SC", "ASIT", "STAR", "Steins-GC", "Steins-SC", "SCUE-GC", "SCUE-SC",
	"PipeSIT-GC", "PipeSIT-SC", "Triad-GC", "Triad-SC",
}

// FuzzSnapshotRoundTrip drives a random trace prefix, saves, loads, and
// drives the remainder, comparing against the uninterrupted stream-order
// oracle: the resumed run must be bit-identical in result fields and
// metrics JSON for any (seed, boundary, scheme) triple.
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint64(0), uint64(0))
	f.Add(uint64(42), uint64(37), uint64(4))
	f.Add(uint64(7), uint64(199), uint64(5))
	f.Add(uint64(999), uint64(450), uint64(3))
	f.Add(uint64(3), uint64(1<<63), uint64(7))
	// Boundary 8 lands mid-way through the default 16-entry MAC batch
	// window, so the capture crosses a half-full deferred-MAC queue: the
	// flush-at-State contract must make straight and resumed runs
	// bit-identical anyway. Once per scheme family of the relaxed-
	// persistence sweep, plus the Steins buffered path.
	f.Add(uint64(77), uint64(8), uint64(8))    // PipeSIT-GC
	f.Add(uint64(78), uint64(8), uint64(11))   // Triad-SC
	f.Add(uint64(79), uint64(8), uint64(4))    // Steins-GC
	f.Add(uint64(80), uint64(8), uint64(9))    // PipeSIT-SC, fault model on (9%3==0)
	f.Add(uint64(81), uint64(416), uint64(10)) // Triad-GC, late boundary at warmup + k*16 + 8
	f.Fuzz(func(t *testing.T, seed, boundRaw, schemeRaw uint64) {
		const ops = 400
		h := testHeader(fuzzSchemes[schemeRaw%uint64(len(fuzzSchemes))], 1, ops)
		h.Seed = seed
		if schemeRaw%3 == 0 {
			// Every third scheme draw also runs the media-fault model, so
			// the fault RNG stream crosses the snapshot boundary.
			h.Faults = faultHeader(h.Scheme, 1, ops).Faults
		}
		total := h.WarmupOps + h.TotalOps
		bound := int(boundRaw % uint64(total+1))

		want, wantJSON := straightSingle(t, h)
		got, gotJSON := checkpointSingle(t, h, bound)
		want.Snapshot, got.Snapshot = nil, nil
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("seed %d bound %d %s: results diverge\nstraight %+v\nresumed  %+v",
				seed, bound, h.Scheme, want, got)
		}
		if !bytes.Equal(wantJSON, gotJSON) {
			t.Fatalf("seed %d bound %d %s: metrics JSON diverges", seed, bound, h.Scheme)
		}
	})
}

// FuzzReadEnvelope throws arbitrary bytes at the decoder: it must reject
// or accept without ever panicking, and anything it accepts must resume
// or fail with a structured error.
func FuzzReadEnvelope(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("STEINSNP"))
	f.Add(bytes.Repeat([]byte{0xFF}, headerLen+32))
	// Seed one valid snapshot so the mutator starts from decodable bytes.
	valid := func() []byte {
		h := testHeader("Steins-GC", 1, 100)
		prof, _ := trace.ByName(h.Workload)
		s, _ := sim.SchemeByName(h.Scheme)
		opt, _ := h.Options()
		g := trace.New(prof, opt.Seed, opt.WarmupOps+opt.Ops)
		e := sim.NewSingle(prof, s, opt)
		if _, err := e.DriveN(g, 25); err != nil {
			f.Fatal(err)
		}
		st, err := CaptureSingle(h, g, e)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, st); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}()
	f.Add(valid)
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A decodable state must either resume cleanly or fail with a
		// structured error — never panic.
		_, _ = st.Resume()
	})
}
