// Server-state checkpoints: the serving layer's complete engine state —
// every tenant's placement groups, every placement group's channel
// controllers — wrapped in the same versioned CRC-protected envelope the
// run snapshots use, under its own payload kind. A daemon drained on
// SIGTERM saves one of these; a restarting daemon loads it, restores the
// controllers, then models the outage as Crash + Recover per placement
// group.
//
// Tenant configuration deliberately does NOT ride along (mirroring run
// snapshots, which resolve workloads through the trace registry): the
// restarting server is built from its own configuration and the restore
// fails with a structured error if the shape (tenants, placement groups,
// channels) does not match the checkpoint.

package snapshot

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"steins/internal/memctrl"
)

// PGState is one placement group: its channel controllers, in channel
// order.
type PGState struct {
	Channels []memctrl.ControllerState
}

// TenantState is one tenant's pool at a batch boundary.
type TenantState struct {
	Name   string
	Scheme string
	// AppliedSeq is the tenant's linearization cursor: how many operations
	// had been admitted to the request log when the checkpoint was taken.
	AppliedSeq uint64
	PGs        []PGState
}

// ServerState is the complete serving-layer checkpoint, tenants sorted by
// name so identical states produce identical bytes.
type ServerState struct {
	Tenants []TenantState
}

// EncodeServer serializes a server state into KindServer envelope bytes.
func EncodeServer(st *ServerState) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(st); err != nil {
		return nil, fmt.Errorf("snapshot: encode server state: %w", err)
	}
	var out bytes.Buffer
	if err := WriteEnvelope(&out, KindServer, payload.Bytes()); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// DecodeServer reads a KindServer envelope and decodes the server state.
// Malformed input yields the envelope sentinels (ErrTruncated, ErrBadMagic,
// ErrVersion, ErrChecksum, ErrCorrupt); it never panics.
func DecodeServer(r io.Reader) (*ServerState, error) {
	payload, err := ReadEnvelope(r, KindServer)
	if err != nil {
		return nil, err
	}
	st := &ServerState{}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(st); err != nil {
		return nil, fmt.Errorf("%w: server state payload: %v", ErrCorrupt, err)
	}
	return st, nil
}

// SaveServerFile atomically writes a server checkpoint: temp file in the
// target directory, then rename, so a crash mid-save can never truncate
// the previous good checkpoint.
func SaveServerFile(path string, st *ServerState) error {
	data, err := EncodeServer(st)
	if err != nil {
		return err
	}
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("snapshot: %w", err)
	}
	// CreateTemp opens 0600; keep the 0644 the plain-create path used.
	if err := os.Chmod(tmp, 0o644); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("snapshot: %w", err)
	}
	return nil
}

// LoadServerFile reads a server checkpoint file.
func LoadServerFile(path string) (*ServerState, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	defer f.Close()
	return DecodeServer(f)
}
