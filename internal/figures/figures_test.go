package figures

import (
	"strconv"
	"strings"
	"testing"

	"steins/internal/trace"
)

// tinyScale keeps figure tests fast while exercising every code path.
func tinyScale() Scale {
	return Scale{Ops: 4000, Seed: 1, Fig17Caches: []int{8 << 10, 16 << 10}}
}

func parseRatio(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cell %q: %v", cell, err)
	}
	return v
}

func TestGCSweepFigures(t *testing.T) {
	sw, err := GCSweep(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Workloads) != len(trace.All()) {
		t.Fatalf("sweep covered %d workloads", len(sw.Workloads))
	}
	for _, fig := range []struct {
		name  string
		table interface{ Rows() [][]string }
	}{
		{"Fig9", Fig9(sw)}, {"Fig10", Fig10(sw)}, {"Fig11", Fig11(sw)},
		{"Fig13", Fig13(sw)}, {"Fig15", Fig15(sw)},
	} {
		rows := fig.table.Rows()
		if len(rows) != len(trace.All())+1 { // + geomean
			t.Fatalf("%s: %d rows", fig.name, len(rows))
		}
		for _, row := range rows {
			// Column 1 is WB-GC: the baseline must be exactly 1.
			if v := parseRatio(t, row[1]); v != 1 {
				t.Fatalf("%s: baseline %v != 1 in row %v", fig.name, v, row)
			}
		}
	}
	// The headline result on the geomean row: WB <= Steins <= STAR <= ASIT
	// for execution time.
	rows := Fig9(sw).Rows()
	avg := rows[len(rows)-1]
	asit, star, steins := parseRatio(t, avg[2]), parseRatio(t, avg[3]), parseRatio(t, avg[4])
	if !(steins <= star && star <= asit) {
		t.Fatalf("Fig9 geomean ordering violated: ASIT %v, STAR %v, Steins %v", asit, star, steins)
	}
	// ASIT's write traffic ~2x (Fig. 13).
	rows = Fig13(sw).Rows()
	avg = rows[len(rows)-1]
	if v := parseRatio(t, avg[2]); v < 1.8 {
		t.Fatalf("Fig13 ASIT traffic %v, want ~2x", v)
	}
}

func TestSCSweepFigures(t *testing.T) {
	sw, err := SCSweep(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range []interface{ Rows() [][]string }{Fig12(sw), Fig14(sw), Fig16(sw)} {
		if len(tab.Rows()) != len(trace.All())+1 {
			t.Fatalf("SC figure has %d rows", len(tab.Rows()))
		}
	}
	// Fig 12 headline: Steins-SC ~= WB-SC and faster than Steins-GC.
	rows := Fig12(sw).Rows()
	avg := rows[len(rows)-1]
	gc, sc := parseRatio(t, avg[2]), parseRatio(t, avg[3])
	if sc >= gc {
		t.Fatalf("Fig12 geomean: Steins-SC %v not below Steins-GC %v", sc, gc)
	}
	if sc > 1.1 {
		t.Fatalf("Fig12 geomean: Steins-SC %v too far above WB-SC", sc)
	}
}

func TestFig17(t *testing.T) {
	tab, err := Fig17(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	rows := tab.Rows()
	if len(rows) != 2 {
		t.Fatalf("Fig17 rows = %d", len(rows))
	}
	for _, row := range rows {
		if row[len(row)-1] != "n/a" {
			t.Fatalf("WB column should be n/a: %v", row)
		}
		for _, cell := range row[1 : len(row)-1] {
			if !strings.Contains(cell, "s") {
				t.Fatalf("recovery cell %q has no time unit", cell)
			}
		}
	}
}

func TestTableI(t *testing.T) {
	s := TableI().String()
	for _, want := range []string{"16.0 GiB", "256.0 KiB", "9 (GC) / 8 (SC)", "40 cycles", "128 B", "16.0 KiB"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Table I missing %q:\n%s", want, s)
		}
	}
}

func TestStorageTable(t *testing.T) {
	s := StorageTable().String()
	for _, want := range []string{"2.0 GiB", "256.0 MiB", "Steins-GC", "SCUE-GC"} {
		if !strings.Contains(s, want) {
			t.Fatalf("storage table missing %q:\n%s", want, s)
		}
	}
}

func TestOverflowTable(t *testing.T) {
	s := OverflowTable().String()
	for _, want := range []string{"classic SIT", "skip-update", "naive"} {
		if !strings.Contains(s, want) {
			t.Fatalf("overflow table missing %q:\n%s", want, s)
		}
	}
	// Classic ~685 years, skip-update half of that.
	rows := OverflowTable().Rows()
	classic, _ := strconv.ParseFloat(rows[0][2], 64)
	skip, _ := strconv.ParseFloat(rows[1][2], 64)
	if classic < 600 || classic > 800 {
		t.Fatalf("classic overflow %v years, want ~685", classic)
	}
	if skip < 300 || skip > 400 {
		t.Fatalf("skip-update overflow %v years, want ~342", skip)
	}
}

func TestAblationTable(t *testing.T) {
	tab, err := AblationTable(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	rows := tab.Rows()
	avg := rows[len(rows)-1]
	full := parseRatio(t, avg[2])
	noBuf := parseRatio(t, avg[3])
	if noBuf <= full {
		t.Fatalf("no-buffer write latency %v not above full Steins %v", noBuf, full)
	}
}
