package figures

import (
	"reflect"
	"testing"

	"steins/internal/sim"
	"steins/internal/stats"
	"steins/internal/trace"
)

// TestParallelSweepDeterministic runs the same job set serially and across
// a pool, twice each: the figure sweeps must be bit-deterministic in the
// worker count (run with -cpu 1,4 so the whole test also executes under
// both GOMAXPROCS settings).
func TestParallelSweepDeterministic(t *testing.T) {
	var jobs []sim.Job
	for _, prof := range trace.Persistent() {
		for _, s := range []sim.Scheme{sim.SteinsGC, sim.SteinsSC, sim.ASIT} {
			jobs = append(jobs, sim.Job{Prof: prof, Scheme: s, Opt: sim.Options{Ops: 3000, Seed: 1}})
		}
	}
	serial, err := sim.RunParallel(jobs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		pooled, err := sim.RunParallel(jobs, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range jobs {
			if !reflect.DeepEqual(serial[i], pooled[i]) {
				t.Fatalf("job %d (%s/%s) diverged between 1 and %d workers:\n  %+v\n  %+v",
					i, jobs[i].Prof.Name, jobs[i].Scheme.Name, workers, serial[i], pooled[i])
			}
		}
	}
}

// TestNormalizedTableDegenerateBaseline: a zero-metric baseline must cost
// only its own row (n/a cells), never panic or poison the geomean.
func TestNormalizedTableDegenerateBaseline(t *testing.T) {
	sw := &Sweep{
		Workloads: []string{"w0", "w1"},
		Schemes:   []sim.Scheme{{Name: "A"}, {Name: "B"}},
		Results: map[string]map[string]sim.Result{
			"w0": {"A": {ExecCycles: 0}, "B": {ExecCycles: 5}},
			"w1": {"A": {ExecCycles: 10}, "B": {ExecCycles: 20}},
		},
	}
	tab := sw.normalizedTable("t", "A", func(r sim.Result) float64 { return float64(r.ExecCycles) })
	rows := tab.Rows()
	if rows[0][1] != "n/a" || rows[0][2] != "n/a" {
		t.Fatalf("degenerate row = %v, want n/a cells", rows[0])
	}
	if rows[1][1] != stats.F(1) || rows[1][2] != stats.F(2) {
		t.Fatalf("healthy row = %v", rows[1])
	}
	geomean := rows[2]
	if geomean[0] != "geomean" || geomean[1] != stats.F(1) || geomean[2] != stats.F(2) {
		t.Fatalf("geomean row = %v, want values from the healthy row only", geomean)
	}
}
