package figures

import (
	"reflect"
	"testing"

	"steins/internal/sim"
	"steins/internal/trace"
)

// TestShardedSweepDeterministic reruns a channelised sweep: identical
// Scale twice must produce bit-identical results (run with -cpu 1,4 so
// the inner worker pools execute under both GOMAXPROCS settings).
func TestShardedSweepDeterministic(t *testing.T) {
	sc := Quick()
	sc.Ops = 3000
	sc.Channels = 4
	sc.Interleave = trace.InterleaveLine
	first, err := runSweep([]sim.Scheme{sim.SteinsGC, sim.SteinsSC}, sc)
	if err != nil {
		t.Fatal(err)
	}
	second, err := runSweep([]sim.Scheme{sim.SteinsGC, sim.SteinsSC}, sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Results, second.Results) {
		t.Fatal("sharded sweep is not deterministic across reruns")
	}
}

// TestShardedSweepMergesSystemView sanity-checks the channelised sweep
// path: every result must carry the full trace's retired ops (nothing
// lost in the split) and a non-trivial makespan.
func TestShardedSweepMergesSystemView(t *testing.T) {
	sc := Quick()
	sc.Ops = 2000
	sc.Channels = 2
	sc.Interleave = trace.InterleavePage
	sw, err := runSweep([]sim.Scheme{sim.SteinsGC}, sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range sw.Workloads {
		r := sw.Results[w]["Steins-GC"]
		if r.Ops != sc.Ops {
			t.Fatalf("%s: merged result retired %d ops, want %d", w, r.Ops, sc.Ops)
		}
		if r.ExecCycles == 0 || r.Ctrl.DataWrites == 0 {
			t.Fatalf("%s: implausible merged result %+v", w, r)
		}
	}
}
