// Package figures regenerates every table and figure of the paper's
// evaluation (§IV): execution time, write/read latency, write traffic and
// energy for the GC and SC scheme sets (Figs. 9-16), recovery time versus
// metadata cache size (Fig. 17), the §IV-E storage overhead table, the
// Table I configuration listing, and the §III-B overflow analysis.
//
// Each figure is derived from a Sweep — one simulation per (workload,
// scheme) — so the expensive runs are shared across the figures that
// report different metrics of the same experiment.
package figures

import (
	"fmt"
	"math"

	"steins/internal/counter"
	"steins/internal/memctrl"
	"steins/internal/metrics"
	"steins/internal/scheme/steins"
	"steins/internal/sim"
	"steins/internal/stats"
	"steins/internal/trace"
)

// Scale selects simulation effort.
type Scale struct {
	Ops  int
	Seed uint64
	// Fig17Caches are the metadata cache sizes swept for recovery time.
	Fig17Caches []int
	// Metrics, when non-nil, attaches a metrics collector to every run of
	// a sweep, filling each Result's Snapshot for export.
	Metrics *metrics.Options
	// Channels > 1 runs every sweep point on the sharded engine, the trace
	// interleaved across that many controllers; results are the merged
	// system view. The sweep's outer job loop then runs serially — the
	// parallelism budget moves inside each run.
	Channels int
	// Interleave selects the address-to-channel mapping when Channels > 1.
	Interleave trace.Interleave
}

// Quick is the unit-test/bench scale: small traces, small caches.
func Quick() Scale {
	return Scale{Ops: 20000, Seed: 1, Fig17Caches: []int{16 << 10, 32 << 10, 64 << 10}}
}

// Full approximates the paper's operating point (Table I cache, longer
// traces, cache sweep to 4 MB).
func Full() Scale {
	return Scale{
		Ops: 200000, Seed: 1,
		Fig17Caches: []int{256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20},
	}
}

// Sweep holds one Result per (workload, scheme).
type Sweep struct {
	Workloads []string
	Schemes   []sim.Scheme
	Results   map[string]map[string]sim.Result // [workload][scheme]
}

// runSweep simulates every workload under every scheme. With one channel
// the (workload, scheme) pairs run in parallel — every pair is an
// independent controller. With Channels > 1 each pair is itself a
// multi-goroutine sharded run, so the pairs run serially and each result
// is the merged system view.
func runSweep(schemes []sim.Scheme, sc Scale) (*Sweep, error) {
	sw := &Sweep{Schemes: schemes, Results: map[string]map[string]sim.Result{}}
	var jobs []sim.Job
	for _, prof := range trace.All() {
		sw.Workloads = append(sw.Workloads, prof.Name)
		sw.Results[prof.Name] = map[string]sim.Result{}
		for _, s := range schemes {
			jobs = append(jobs, sim.Job{Prof: prof, Scheme: s,
				Opt: sim.Options{Ops: sc.Ops, Seed: sc.Seed, Metrics: sc.Metrics}})
		}
	}
	if sc.Channels > 1 {
		so := sim.ShardOptions{Channels: sc.Channels, Interleave: sc.Interleave}
		for _, job := range jobs {
			res, err := sim.RunSharded(job.Prof, job.Scheme, job.Opt, so)
			if err != nil {
				return nil, fmt.Errorf("figures: %s/%s: %w", job.Prof.Name, job.Scheme.Name, err)
			}
			sw.Results[job.Prof.Name][job.Scheme.Name] = res.Merged
		}
		return sw, nil
	}
	results, err := sim.RunParallel(jobs, 0)
	if err != nil {
		return nil, fmt.Errorf("figures: %w", err)
	}
	for i, job := range jobs {
		sw.Results[job.Prof.Name][job.Scheme.Name] = results[i]
	}
	return sw, nil
}

// Snapshots returns the sweep's metrics snapshots in deterministic
// (workload, scheme) order; runs without an attached collector (Scale
// without Metrics) contribute nothing.
func (sw *Sweep) Snapshots() []*metrics.Snapshot {
	var snaps []*metrics.Snapshot
	for _, w := range sw.Workloads {
		for _, s := range sw.Schemes {
			if snap := sw.Results[w][s.Name].Snapshot; snap != nil {
				snaps = append(snaps, snap)
			}
		}
	}
	return snaps
}

// GCSweep runs the Fig. 9-11/13/15 scheme set (WB-GC, ASIT, STAR,
// Steins-GC).
func GCSweep(sc Scale) (*Sweep, error) { return runSweep(sim.GCComparison(), sc) }

// SCSweep runs the Fig. 12/14/16 scheme set (WB-SC, Steins-GC, Steins-SC).
func SCSweep(sc Scale) (*Sweep, error) { return runSweep(sim.SCComparison(), sc) }

// metric extracts one value from a result.
type metric func(sim.Result) float64

// ratio divides v by base, yielding NaN for a degenerate base so the
// cell formats as "n/a" and stats.GeoMean skips it.
func ratio(v, base float64) float64 {
	if base == 0 {
		return math.NaN()
	}
	return v / base
}

// normalizedTable renders one workload-by-scheme table of a metric
// normalised to the baseline scheme, with a geometric-mean row.
func (sw *Sweep) normalizedTable(title, baseline string, m metric) *stats.Table {
	headers := []string{"workload"}
	for _, s := range sw.Schemes {
		headers = append(headers, s.Name)
	}
	t := stats.NewTable(title, headers...)
	ratios := make(map[string][]float64)
	for _, w := range sw.Workloads {
		base := m(sw.Results[w][baseline])
		row := []string{w}
		for _, s := range sw.Schemes {
			// A degenerate baseline (e.g. a zero-cycle run) must cost only
			// this row, not the sweep: the cell renders as n/a and stays
			// out of the geomean.
			v := ratio(m(sw.Results[w][s.Name]), base)
			row = append(row, stats.F(v))
			ratios[s.Name] = append(ratios[s.Name], v)
		}
		t.AddRow(row...)
	}
	avg := []string{"geomean"}
	for _, s := range sw.Schemes {
		avg = append(avg, stats.F(stats.GeoMean(ratios[s.Name])))
	}
	t.AddRow(avg...)
	t.AddNote("normalised to %s; series shape comparable to the paper, absolute factors depend on the trace substitution (EXPERIMENTS.md)", baseline)
	return t
}

// Fig9 is execution time normalised to WB-GC.
func Fig9(sw *Sweep) *stats.Table {
	return sw.normalizedTable("Fig. 9: execution time (normalised to WB-GC)", "WB-GC",
		func(r sim.Result) float64 { return float64(r.ExecCycles) })
}

// Fig10 is write latency normalised to WB-GC.
func Fig10(sw *Sweep) *stats.Table {
	return sw.normalizedTable("Fig. 10: write latency (normalised to WB-GC)", "WB-GC",
		func(r sim.Result) float64 { return r.AvgWriteLat })
}

// Fig11 is read latency normalised to WB-GC.
func Fig11(sw *Sweep) *stats.Table {
	return sw.normalizedTable("Fig. 11: read latency (normalised to WB-GC)", "WB-GC",
		func(r sim.Result) float64 { return r.AvgReadLat })
}

// Fig12 is execution time normalised to WB-SC.
func Fig12(sw *Sweep) *stats.Table {
	return sw.normalizedTable("Fig. 12: execution time (normalised to WB-SC)", "WB-SC",
		func(r sim.Result) float64 { return float64(r.ExecCycles) })
}

// Fig13 is write traffic normalised to WB-GC.
func Fig13(sw *Sweep) *stats.Table {
	return sw.normalizedTable("Fig. 13: write traffic (normalised to WB-GC)", "WB-GC",
		func(r sim.Result) float64 { return float64(r.WriteBytes) })
}

// Fig14 is write traffic normalised to WB-SC.
func Fig14(sw *Sweep) *stats.Table {
	return sw.normalizedTable("Fig. 14: write traffic (normalised to WB-SC)", "WB-SC",
		func(r sim.Result) float64 { return float64(r.WriteBytes) })
}

// Fig15 is energy normalised to WB-GC.
func Fig15(sw *Sweep) *stats.Table {
	return sw.normalizedTable("Fig. 15: energy consumption (normalised to WB-GC)", "WB-GC",
		func(r sim.Result) float64 { return r.EnergyPJ })
}

// Fig16 is energy normalised to WB-SC.
func Fig16(sw *Sweep) *stats.Table {
	return sw.normalizedTable("Fig. 16: energy consumption (normalised to WB-SC)", "WB-SC",
		func(r sim.Result) float64 { return r.EnergyPJ })
}

// Fig17 measures recovery time versus metadata cache size under the §IV-D
// methodology (all cached metadata dirty at the crash; 100 ns per NVM
// fetch). WB appears as "n/a": it cannot recover.
func Fig17(sc Scale) (*stats.Table, error) {
	schemes := []sim.Scheme{sim.ASIT, sim.STAR, sim.SteinsGC, sim.SteinsSC, sim.TriadGC, sim.TriadSC}
	headers := []string{"metadata cache"}
	for _, s := range schemes {
		headers = append(headers, s.Name)
	}
	headers = append(headers, "WB")
	t := stats.NewTable("Fig. 17: recovery time vs metadata cache size", headers...)
	for _, cacheBytes := range sc.Fig17Caches {
		row := []string{stats.Bytes(uint64(cacheBytes))}
		for _, s := range schemes {
			rep, err := sim.RecoveryAtCacheSize(s, cacheBytes, sc.Seed)
			if err != nil {
				return nil, fmt.Errorf("figures: fig17 %s @ %d: %w", s.Name, cacheBytes, err)
			}
			row = append(row, stats.Seconds(rep.TimeNS))
		}
		row = append(row, "n/a")
		t.AddRow(row...)
	}
	t.AddNote("paper at 4 MB: ASIT 0.02 s, STAR 0.065 s, Steins-GC 0.08 s, Steins-SC 0.44 s")
	t.AddNote("SCUE and PipeSIT rebuild from data blocks (capacity-scaled, §II-D) and are excluded like SCUE is in the paper; Triad reads leaf images only")
	return t, nil
}

// TableI lists the evaluated configuration.
func TableI() *stats.Table {
	cfg := memctrl.DefaultConfig(16<<30, false)
	t := stats.NewTable("Table I: evaluated NVM system", "parameter", "value")
	t.AddRow("CPU clock", fmt.Sprintf("%.0f GHz", cfg.NVM.ClockGHz))
	t.AddRow("NVM capacity", stats.Bytes(cfg.DataBytes))
	t.AddRow("PCM latency (tRCD/tCL/tCWD/tFAW/tWTR/tWR)", "48/15/13/50/7.5/300 ns")
	t.AddRow("write queue", fmt.Sprintf("%d entries, %d banks", cfg.NVM.WriteQueueEntries, cfg.NVM.WriteBanks))
	t.AddRow("metadata cache", fmt.Sprintf("%s, %d-way, LRU, 64 B blocks",
		stats.Bytes(uint64(cfg.MetaCacheBytes)), cfg.MetaCacheWays))
	gc := memctrl.NewLayout(cfg)
	scCfg := cfg
	scCfg.SplitLeaf = true
	scL := memctrl.NewLayout(scCfg)
	t.AddRow("SIT height incl. root", fmt.Sprintf("%d (GC) / %d (SC)",
		gc.Geo.HeightIncludingRoot(), scL.Geo.HeightIncludingRoot()))
	t.AddRow("hash latency", fmt.Sprintf("%d cycles", cfg.HashCycles))
	t.AddRow("non-volatile buffer", fmt.Sprintf("%d B", cfg.NVBufferBytes))
	t.AddRow("offset records", fmt.Sprintf("%s in NVM, %d lines cached",
		stats.Bytes(gc.RecordBytes), cfg.RecordCacheLines))
	return t
}

// StorageTable reproduces §IV-E: per-scheme storage overheads at 16 GB.
func StorageTable() *stats.Table {
	t := stats.NewTable("Storage overhead (16 GB NVM, §IV-E)",
		"scheme", "leaf nodes", "whole SIT", "extra NVM", "cache tax", "on-chip NV")
	for _, s := range []sim.Scheme{sim.WBGC, sim.WBSC, sim.ASIT, sim.STAR, sim.SteinsGC, sim.SteinsSC, sim.SCUEGC, sim.PipeSITGC, sim.TriadGC} {
		c := memctrl.New(memctrl.DefaultConfig(16<<30, s.Split), s.Factory)
		ov := c.Policy().Storage()
		t.AddRow(s.Name,
			stats.Bytes(c.Layout().Geo.LevelNodes[0]*64),
			stats.Bytes(ov.TreeBytes),
			stats.Bytes(ov.NVMExtraBytes),
			stats.Bytes(ov.CacheTaxBytes),
			stats.Bytes(ov.OnChipNVBytes))
	}
	t.AddNote("paper: GC leaves 2 GiB (1/8 of data), SC leaves 256 MiB (1/64); ASIT taxes 1/8 of the cache, STAR 1/64, Steins none")
	return t
}

// OverflowTable reproduces the §III-B2 overflow analysis: years until a
// 56-bit parent counter overflows at one write per 300 ns, for classic
// SIT, Steins skip-update, and the naive weighting.
func OverflowTable() *stats.Table {
	const writeNS = 300.0
	yearNS := 365.25 * 24 * 3600 * 1e9
	years := func(writesPerCount float64) float64 {
		return float64(uint64(1)<<counter.CounterBits) * writeNS * writesPerCount / yearNS
	}
	t := stats.NewTable("Overflow analysis (§III-B2)", "scheme", "counter growth per write", "years to overflow")
	t.AddRow("classic SIT (self-increment)", "1", stats.F2(years(1)))
	t.AddRow("Steins skip-update (worst case)", "2", stats.F2(years(0.5)))
	t.AddRow("naive weight 2^6*64", "up to 4096", stats.F2(years(1.0/4096)))
	t.AddNote("paper: ~685 years classic, >=342 years with skip-update; naive weighting is why §III-B1 rejects it")
	return t
}

// AblationTable quantifies Steins' §III-E design choice in isolation: the
// same workloads under full Steins-GC, Steins-GC without the non-volatile
// parent-counter buffer (parent fetches back on the write critical path),
// and the WB-GC floor, reported as write latency normalised to WB-GC.
func AblationTable(sc Scale) (*stats.Table, error) {
	noBuf := sim.Scheme{
		Name:    "Steins-GC-noNVBuf",
		Factory: steins.FactoryWithOptions(steins.Options{DisableNVBuffer: true}),
	}
	schemes := []sim.Scheme{sim.WBGC, sim.SteinsGC, noBuf}
	var jobs []sim.Job
	var workloads []string
	for _, prof := range trace.All() {
		workloads = append(workloads, prof.Name)
		for _, s := range schemes {
			jobs = append(jobs, sim.Job{Prof: prof, Scheme: s, Opt: sim.Options{Ops: sc.Ops, Seed: sc.Seed}})
		}
	}
	results, err := sim.RunParallel(jobs, 0)
	if err != nil {
		return nil, fmt.Errorf("figures: ablation: %w", err)
	}
	t := stats.NewTable("Ablation: the non-volatile buffer (§III-E), write latency vs WB-GC",
		"workload", "WB-GC", "Steins-GC", "Steins-GC-noNVBuf")
	ratios := map[string][]float64{}
	for wi, w := range workloads {
		base := results[wi*len(schemes)].AvgWriteLat
		row := []string{w}
		for si, s := range schemes {
			v := ratio(results[wi*len(schemes)+si].AvgWriteLat, base)
			row = append(row, stats.F(v))
			ratios[s.Name] = append(ratios[s.Name], v)
		}
		t.AddRow(row...)
	}
	avg := []string{"geomean"}
	for _, s := range schemes {
		avg = append(avg, stats.F(stats.GeoMean(ratios[s.Name])))
	}
	t.AddRow(avg...)
	t.AddNote("without the buffer, every dirty eviction fetches (and verifies) the parent on the write critical path")
	return t, nil
}
