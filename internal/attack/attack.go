// Package attack is the integrity-attack injection harness: it replays the
// threat model of §II-A against a live secure-memory system — bus/NVM
// tampering, replay of authentic stale state, and manipulation of the
// recovery-tracking structures (§III-H) — and classifies whether and where
// each attack is detected (at runtime verification or during recovery).
package attack

import (
	"errors"
	"fmt"

	"steins/internal/cme"
	"steins/internal/memctrl"
	"steins/internal/multi"
	"steins/internal/nvmem"
	"steins/internal/rng"
)

// Scenario identifies one attack pattern.
type Scenario int

// The injected attacks.
const (
	// TamperData flips ciphertext bits of a written block in NVM.
	TamperData Scenario = iota
	// TamperTag corrupts the per-block authentication tag (ECC bits).
	TamperTag
	// ReplayData restores an authentic older (ciphertext, tag) pair.
	ReplayData
	// TamperNode flips bits of a persisted SIT node.
	TamperNode
	// ReplayNode restores an authentic older image of a persisted node
	// while newer state exists.
	ReplayNode
	// EraseTracking zeroes the scheme's dirty-tracking state in NVM before
	// recovery (records, bitmap, shadow table).
	EraseTracking
	// MediaTag models a media fault in the ECC-bits region holding a
	// block's tag: the counter-recovery hint flips. Unlike TamperTag this
	// damages the recovery side channel, not the authentication MAC.
	MediaTag
	// MediaRecord models a media fault in the dirty-tracking region: one
	// bit flips in the first populated tracking line (record region,
	// bitmap or shadow table, whichever the scheme uses).
	MediaRecord
	numScenarios
)

// Scenarios lists every attack.
func Scenarios() []Scenario {
	out := make([]Scenario, numScenarios)
	for i := range out {
		out[i] = Scenario(i)
	}
	return out
}

// String names the scenario.
func (s Scenario) String() string {
	switch s {
	case TamperData:
		return "tamper-data"
	case TamperTag:
		return "tamper-tag"
	case ReplayData:
		return "replay-data"
	case TamperNode:
		return "tamper-node"
	case ReplayNode:
		return "replay-node"
	case EraseTracking:
		return "erase-tracking"
	case MediaTag:
		return "media-tag"
	case MediaRecord:
		return "media-record"
	default:
		return fmt.Sprintf("scenario(%d)", int(s))
	}
}

// Report describes one executed attack.
type Report struct {
	Scenario    Scenario
	Detected    bool   // an integrity violation was raised
	Where       string // "recovery" or "runtime"
	Violation   error  // the integrity error observed
	Applicable  bool   // false when the scheme cannot recover at all (WB)
	Neutralized bool   // not detected but also ineffective: all data intact
}

// shardChunk is the sharded address-interleave granularity. It is one
// split-leaf coverage (64 lines), so every leaf's covered data — and the
// replay-node epoch construction around the target — stays on one channel
// regardless of the channel count.
const shardChunk = 4096

// routeAddr maps a global data address onto (channel, local address) under
// shardChunk interleaving; one channel is the identity.
func routeAddr(channels int, addr uint64) (int, uint64) {
	if channels == 1 {
		return 0, addr
	}
	chunk := addr / shardChunk
	return int(chunk % uint64(channels)), (chunk/uint64(channels))*shardChunk + addr%shardChunk
}

// channelBytes sizes one channel's data region under shardChunk
// interleaving of totalBytes across channels: enough whole chunks to hold
// the worst-case local address, whether or not the chunk count divides the
// channel count evenly. Sizing each channel as totalBytes/channels is
// wrong twice for uneven counts: the earlier channels own one extra chunk
// (their local space is larger than an even share), and the quotient need
// not even be line-aligned.
func channelBytes(totalBytes uint64, channels int) uint64 {
	if channels <= 1 {
		return totalBytes
	}
	chunks := (totalBytes + shardChunk - 1) / shardChunk
	perChannel := (chunks + uint64(channels) - 1) / uint64(channels)
	return perChannel * shardChunk
}

// Execute runs the scenario against a fresh system built by factory:
// a write workload establishes state, the attack is injected around a
// crash, and detection is checked first during recovery and then by
// reading every attacked address back.
func Execute(factory memctrl.PolicyFactory, split bool, s Scenario) (Report, error) {
	return ExecuteSharded(factory, split, s, 1)
}

// ExecuteSharded is Execute over a channel-interleaved multi-controller
// system: the same global workload is split across channels at shardChunk
// granularity, the attack is injected into the channel owning the target,
// every channel recovers (in parallel, as the deployment would), and the
// differential readback spans the whole global space. Detection must not
// depend on the sharding: a scenario classifies identically at any channel
// count.
func ExecuteSharded(factory memctrl.PolicyFactory, split bool, s Scenario, channels int) (Report, error) {
	rep := Report{Scenario: s, Applicable: true}
	const totalBytes = 1 << 20
	cfg := memctrl.DefaultConfig(channelBytes(totalBytes, channels), split)
	cfg.MetaCacheBytes = 4 << 10
	cfg.MetaCacheWays = 4
	ctrls := make([]*memctrl.Controller, channels)
	for i := range ctrls {
		ctrls[i] = memctrl.New(cfg, factory)
	}

	r := rng.New(99)
	lines := uint64(totalBytes) / 64
	expected := make(map[uint64][64]byte)
	var order []uint64
	write := func(addr uint64, v byte) error {
		var b [64]byte
		b[0], b[1] = v, byte(addr>>6)
		if _, seen := expected[addr]; !seen {
			order = append(order, addr)
		}
		expected[addr] = b
		ch, local := routeAddr(channels, addr)
		return ctrls[ch].WriteData(5, local, b)
	}
	read := func(addr uint64) ([64]byte, error) {
		ch, local := routeAddr(channels, addr)
		return ctrls[ch].ReadData(1, local)
	}
	for i := 0; i < 3000; i++ {
		if err := write(r.Uint64n(lines)*64, byte(i)); err != nil {
			return rep, err
		}
	}
	target := order[0]
	co, lt := routeAddr(channels, target)
	c := ctrls[co] // the channel the attack lands on

	// Capture replay material before newer writes.
	mat := Capture(c, lt)
	leaf, _ := c.Layout().Geo.LeafOfData(lt)
	leafAddr := c.Layout().Geo.NodeAddr(0, leaf)
	if s == ReplayNode {
		// Build two flush epochs for the leaf covering target.
		if _, err := c.FlushNode(0, leaf); err != nil {
			return rep, err
		}
		if _, err := read(target); err != nil {
			return rep, err
		}
		mat.Node = c.Device().Peek(leafAddr)
		if err := write(target+64*2, 77); err != nil { // same leaf, new epoch
			return rep, err
		}
		if _, err := c.FlushNode(0, leaf); err != nil {
			return rep, err
		}
		if _, err := read(target); err != nil {
			return rep, err
		}
	}
	if err := write(target, 0xAB); err != nil { // newest data
		return rep, err
	}

	for _, ctrl := range ctrls {
		ctrl.Crash()
	}
	Inject(c, s, lt, mat)

	if _, _, err := multi.RecoverAll(ctrls); err != nil {
		if errors.Is(err, memctrl.ErrNoRecovery) {
			rep.Applicable = false
			return rep, nil
		}
		if errors.Is(err, memctrl.ErrTamper) || errors.Is(err, memctrl.ErrReplay) {
			rep.Detected, rep.Where, rep.Violation = true, "recovery", err
			return rep, nil
		}
		return rep, err
	}
	// Recovery passed (the attacked state may have been outside the dirty
	// set or overwritten by the restore); the runtime verification must
	// either catch the attack on access or every block must read back
	// intact — silent corruption is the one unacceptable outcome.
	for _, addr := range order {
		got, err := read(addr)
		if err != nil {
			rep.Detected, rep.Where, rep.Violation = true, "runtime", err
			return rep, nil
		}
		if got != expected[addr] {
			return rep, fmt.Errorf("attack %v silently corrupted data at %#x", s, addr)
		}
	}
	rep.Neutralized = true
	return rep, nil
}

// Material carries the authentic stale durable state a replay scenario
// restores: the target's ciphertext line and tag, and (for ReplayNode) an
// older persisted image of the SIT leaf covering it.
type Material struct {
	Line nvmem.Line
	Tag  cme.Tag
	Node nvmem.Line
}

// Capture snapshots the target address's current durable state as replay
// material. Taken before newer writes land, it is exactly the authentic
// stale state the §II-A replay attacker holds. addr is controller-local.
func Capture(c *memctrl.Controller, addr uint64) Material {
	leaf, _ := c.Layout().Geo.LeafOfData(addr)
	return Material{
		Line: c.Device().Peek(addr),
		Tag:  c.Tag(addr),
		Node: c.Device().Peek(c.Layout().Geo.NodeAddr(0, leaf)),
	}
}

// Inject applies the scenario's mutation to the durable state around the
// controller-local target address. Replay scenarios restore the supplied
// Material; the campaign engine reuses every scenario as a schedulable
// adversarial event through this entry point.
func Inject(c *memctrl.Controller, s Scenario, target uint64, m Material) {
	leaf, _ := c.Layout().Geo.LeafOfData(target)
	leafAddr := c.Layout().Geo.NodeAddr(0, leaf)
	dev := c.Device()
	switch s {
	case TamperData:
		line := dev.Peek(target)
		line[7] ^= 0x10
		dev.Poke(target, line)
	case TamperTag:
		tag := c.Tag(target)
		tag.MAC ^= 1
		c.SetTag(target, tag)
	case ReplayData:
		dev.Poke(target, m.Line)
		c.SetTag(target, m.Tag)
	case TamperNode:
		line := dev.Peek(leafAddr)
		line[11] ^= 0x04
		dev.Poke(leafAddr, line)
	case ReplayNode:
		dev.Poke(leafAddr, m.Node)
	case EraseTracking:
		lay := c.Layout()
		for li := uint64(0); li < lay.RecordLines(); li++ {
			dev.Poke(lay.RecordBase+li*nvmem.LineSize, nvmem.Line{})
		}
		for li := uint64(0); li < lay.BitmapLines(); li++ {
			dev.Poke(lay.BitmapBase+li*nvmem.LineSize, nvmem.Line{})
		}
		for off := uint64(0); off < lay.ShadowBytes; off += nvmem.LineSize {
			dev.Poke(lay.ShadowBase+off, nvmem.Line{})
		}
	case MediaTag:
		tag := c.Tag(target)
		tag.Hint ^= 1
		c.SetTag(target, tag)
	case MediaRecord:
		mediaRecordFlip(c)
	}
}

// mediaRecordFlip flips one bit in the first populated line of the
// scheme's dirty-tracking region (records, then bitmap, then shadow). A
// scheme with no tracking state at all is untouched — the fault has
// nothing to land on.
func mediaRecordFlip(c *memctrl.Controller) {
	dev := c.Device()
	lay := c.Layout()
	regions := []struct{ base, lines uint64 }{
		{lay.RecordBase, lay.RecordLines()},
		{lay.BitmapBase, lay.BitmapLines()},
		{lay.ShadowBase, lay.ShadowBytes / nvmem.LineSize},
	}
	for _, reg := range regions {
		for li := uint64(0); li < reg.lines; li++ {
			addr := reg.base + li*nvmem.LineSize
			if line := dev.Peek(addr); line != (nvmem.Line{}) {
				line[2] ^= 0x20
				dev.Poke(addr, line)
				return
			}
		}
	}
}
