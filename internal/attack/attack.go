// Package attack is the integrity-attack injection harness: it replays the
// threat model of §II-A against a live secure-memory system — bus/NVM
// tampering, replay of authentic stale state, and manipulation of the
// recovery-tracking structures (§III-H) — and classifies whether and where
// each attack is detected (at runtime verification or during recovery).
package attack

import (
	"errors"
	"fmt"

	"steins/internal/cme"
	"steins/internal/memctrl"
	"steins/internal/nvmem"
	"steins/internal/rng"
)

// Scenario identifies one attack pattern.
type Scenario int

// The injected attacks.
const (
	// TamperData flips ciphertext bits of a written block in NVM.
	TamperData Scenario = iota
	// TamperTag corrupts the per-block authentication tag (ECC bits).
	TamperTag
	// ReplayData restores an authentic older (ciphertext, tag) pair.
	ReplayData
	// TamperNode flips bits of a persisted SIT node.
	TamperNode
	// ReplayNode restores an authentic older image of a persisted node
	// while newer state exists.
	ReplayNode
	// EraseTracking zeroes the scheme's dirty-tracking state in NVM before
	// recovery (records, bitmap, shadow table).
	EraseTracking
	numScenarios
)

// Scenarios lists every attack.
func Scenarios() []Scenario {
	out := make([]Scenario, numScenarios)
	for i := range out {
		out[i] = Scenario(i)
	}
	return out
}

// String names the scenario.
func (s Scenario) String() string {
	switch s {
	case TamperData:
		return "tamper-data"
	case TamperTag:
		return "tamper-tag"
	case ReplayData:
		return "replay-data"
	case TamperNode:
		return "tamper-node"
	case ReplayNode:
		return "replay-node"
	case EraseTracking:
		return "erase-tracking"
	default:
		return fmt.Sprintf("scenario(%d)", int(s))
	}
}

// Report describes one executed attack.
type Report struct {
	Scenario    Scenario
	Detected    bool   // an integrity violation was raised
	Where       string // "recovery" or "runtime"
	Violation   error  // the integrity error observed
	Applicable  bool   // false when the scheme cannot recover at all (WB)
	Neutralized bool   // not detected but also ineffective: all data intact
}

// Execute runs the scenario against a fresh system built by factory:
// a write workload establishes state, the attack is injected around a
// crash, and detection is checked first during recovery and then by
// reading every attacked address back.
func Execute(factory memctrl.PolicyFactory, split bool, s Scenario) (Report, error) {
	rep := Report{Scenario: s, Applicable: true}
	cfg := memctrl.DefaultConfig(1<<20, split)
	cfg.MetaCacheBytes = 4 << 10
	cfg.MetaCacheWays = 4
	c := memctrl.New(cfg, factory)

	r := rng.New(99)
	lines := cfg.DataBytes / 64
	expected := make(map[uint64][64]byte)
	var order []uint64
	write := func(addr uint64, v byte) error {
		var b [64]byte
		b[0], b[1] = v, byte(addr>>6)
		if _, seen := expected[addr]; !seen {
			order = append(order, addr)
		}
		expected[addr] = b
		return c.WriteData(5, addr, b)
	}
	for i := 0; i < 3000; i++ {
		if err := write(r.Uint64n(lines)*64, byte(i)); err != nil {
			return rep, err
		}
	}
	target := order[0]

	// Capture replay material before newer writes.
	oldLine := c.Device().Peek(target)
	oldTag := c.Tag(target)
	var oldNode nvmem.Line
	leaf, _ := c.Layout().Geo.LeafOfData(target)
	leafAddr := c.Layout().Geo.NodeAddr(0, leaf)
	if s == ReplayNode {
		// Build two flush epochs for the leaf covering target.
		if _, err := c.FlushNode(0, leaf); err != nil {
			return rep, err
		}
		if _, err := c.ReadData(1, target); err != nil {
			return rep, err
		}
		oldNode = c.Device().Peek(leafAddr)
		if err := write(target+64*2, 77); err != nil { // same leaf, new epoch
			return rep, err
		}
		if _, err := c.FlushNode(0, leaf); err != nil {
			return rep, err
		}
		if _, err := c.ReadData(1, target); err != nil {
			return rep, err
		}
	}
	if err := write(target, 0xAB); err != nil { // newest data
		return rep, err
	}

	c.Crash()
	inject(c, s, target, oldLine, oldTag, oldNode, leafAddr)

	if _, err := c.Recover(); err != nil {
		if errors.Is(err, memctrl.ErrNoRecovery) {
			rep.Applicable = false
			return rep, nil
		}
		if errors.Is(err, memctrl.ErrTamper) || errors.Is(err, memctrl.ErrReplay) {
			rep.Detected, rep.Where, rep.Violation = true, "recovery", err
			return rep, nil
		}
		return rep, err
	}
	// Recovery passed (the attacked state may have been outside the dirty
	// set or overwritten by the restore); the runtime verification must
	// either catch the attack on access or every block must read back
	// intact — silent corruption is the one unacceptable outcome.
	for _, addr := range order {
		got, err := c.ReadData(1, addr)
		if err != nil {
			rep.Detected, rep.Where, rep.Violation = true, "runtime", err
			return rep, nil
		}
		if got != expected[addr] {
			return rep, fmt.Errorf("attack %v silently corrupted data at %#x", s, addr)
		}
	}
	rep.Neutralized = true
	return rep, nil
}

// inject applies the scenario's mutation to the durable state.
func inject(c *memctrl.Controller, s Scenario, target uint64,
	oldLine nvmem.Line, oldTag cme.Tag, oldNode nvmem.Line, leafAddr uint64) {
	dev := c.Device()
	switch s {
	case TamperData:
		line := dev.Peek(target)
		line[7] ^= 0x10
		dev.Poke(target, line)
	case TamperTag:
		tag := c.Tag(target)
		tag.MAC ^= 1
		c.SetTag(target, tag)
	case ReplayData:
		dev.Poke(target, oldLine)
		c.SetTag(target, oldTag)
	case TamperNode:
		line := dev.Peek(leafAddr)
		line[11] ^= 0x04
		dev.Poke(leafAddr, line)
	case ReplayNode:
		dev.Poke(leafAddr, oldNode)
	case EraseTracking:
		lay := c.Layout()
		for li := uint64(0); li < lay.RecordLines(); li++ {
			dev.Poke(lay.RecordBase+li*nvmem.LineSize, nvmem.Line{})
		}
		for li := uint64(0); li < lay.BitmapLines(); li++ {
			dev.Poke(lay.BitmapBase+li*nvmem.LineSize, nvmem.Line{})
		}
		for off := uint64(0); off < lay.ShadowBytes; off += nvmem.LineSize {
			dev.Poke(lay.ShadowBase+off, nvmem.Line{})
		}
	}
}
