package attack_test

import (
	"testing"

	"steins/internal/attack"
	"steins/internal/scheme/asit"
	"steins/internal/scheme/scue"
	"steins/internal/scheme/star"
	"steins/internal/scheme/steins"
	"steins/internal/scheme/wb"
	"steins/internal/sim"
)

func TestNoSilentCorruptionAnyScheme(t *testing.T) {
	// The one inviolable property across every recoverable scheme and
	// every attack: no attack ever yields silently corrupted data. Each
	// attack must be detected or neutralized.
	schemes := []sim.Scheme{
		{Name: "ASIT", Factory: asit.Factory},
		{Name: "STAR", Factory: star.Factory},
		{Name: "Steins-GC", Factory: steins.Factory},
		{Name: "Steins-SC", Factory: steins.Factory, Split: true},
		{Name: "SCUE-GC", Factory: scue.Factory},
	}
	for _, s := range schemes {
		for _, sc := range attack.Scenarios() {
			rep, err := attack.Execute(s.Factory, s.Split, sc)
			if err != nil {
				t.Errorf("%s/%v: %v", s.Name, sc, err)
				continue
			}
			if !rep.Applicable {
				t.Errorf("%s/%v: unexpectedly inapplicable", s.Name, sc)
				continue
			}
			if !rep.Detected && !rep.Neutralized {
				t.Errorf("%s/%v: neither detected nor neutralized", s.Name, sc)
			}
		}
	}
}

func TestSteinsDetectsCoreAttacks(t *testing.T) {
	// The paper's security analysis (§III-H): tampering caught by HMACs,
	// replay and tracking manipulation caught by the LIncs.
	mustDetect := []attack.Scenario{
		attack.TamperData, attack.TamperTag, attack.ReplayData,
		attack.TamperNode, attack.ReplayNode, attack.EraseTracking,
	}
	for _, sc := range mustDetect {
		rep, err := attack.Execute(steins.Factory, false, sc)
		if err != nil {
			t.Fatalf("%v: %v", sc, err)
		}
		if !rep.Detected {
			t.Errorf("Steins did not detect %v (neutralized=%v)", sc, rep.Neutralized)
		}
	}
}

func TestWBInapplicable(t *testing.T) {
	rep, err := attack.Execute(wb.Factory, false, attack.TamperData)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Applicable {
		t.Fatal("WB reported as recoverable")
	}
}

func TestScenarioNames(t *testing.T) {
	seen := map[string]bool{}
	for _, sc := range attack.Scenarios() {
		name := sc.String()
		if seen[name] || name == "" {
			t.Fatalf("bad scenario name %q", name)
		}
		seen[name] = true
	}
}
