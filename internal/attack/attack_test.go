package attack_test

import (
	"testing"

	"steins/internal/attack"
	"steins/internal/scheme/asit"
	"steins/internal/scheme/scue"
	"steins/internal/scheme/star"
	"steins/internal/scheme/steins"
	"steins/internal/scheme/wb"
	"steins/internal/sim"
)

func TestNoSilentCorruptionAnyScheme(t *testing.T) {
	// The one inviolable property across every recoverable scheme and
	// every attack: no attack ever yields silently corrupted data. Each
	// attack must be detected or neutralized.
	schemes := []sim.Scheme{
		{Name: "ASIT", Factory: asit.Factory},
		{Name: "STAR", Factory: star.Factory},
		{Name: "Steins-GC", Factory: steins.Factory},
		{Name: "Steins-SC", Factory: steins.Factory, Split: true},
		{Name: "SCUE-GC", Factory: scue.Factory},
	}
	for _, s := range schemes {
		for _, sc := range attack.Scenarios() {
			rep, err := attack.Execute(s.Factory, s.Split, sc)
			if err != nil {
				t.Errorf("%s/%v: %v", s.Name, sc, err)
				continue
			}
			if !rep.Applicable {
				t.Errorf("%s/%v: unexpectedly inapplicable", s.Name, sc)
				continue
			}
			if !rep.Detected && !rep.Neutralized {
				t.Errorf("%s/%v: neither detected nor neutralized", s.Name, sc)
			}
		}
	}
}

func TestSteinsDetectsCoreAttacks(t *testing.T) {
	// The paper's security analysis (§III-H): tampering caught by HMACs,
	// replay and tracking manipulation caught by the LIncs.
	mustDetect := []attack.Scenario{
		attack.TamperData, attack.TamperTag, attack.ReplayData,
		attack.TamperNode, attack.ReplayNode, attack.EraseTracking,
	}
	for _, sc := range mustDetect {
		rep, err := attack.Execute(steins.Factory, false, sc)
		if err != nil {
			t.Fatalf("%v: %v", sc, err)
		}
		if !rep.Detected {
			t.Errorf("Steins did not detect %v (neutralized=%v)", sc, rep.Neutralized)
		}
	}
}

func TestShardedClassificationMatchesSingleChannel(t *testing.T) {
	// Sharding the address space across channels must not change what an
	// attack classifies as: the channel owning the attacked state detects
	// (or neutralizes) it exactly as a single-channel system would, and
	// the other channels stay unaffected. Exercised for the tracking-
	// erasure attack and the two media-fault scenarios across the
	// recoverable schemes.
	schemes := []sim.Scheme{
		{Name: "Steins-GC", Factory: steins.Factory},
		{Name: "Steins-SC", Factory: steins.Factory, Split: true},
		{Name: "ASIT", Factory: asit.Factory},
		{Name: "STAR", Factory: star.Factory},
	}
	scenarios := []attack.Scenario{attack.EraseTracking, attack.MediaTag, attack.MediaRecord}
	for _, s := range schemes {
		for _, sc := range scenarios {
			base, err := attack.Execute(s.Factory, s.Split, sc)
			if err != nil {
				t.Errorf("%s/%v: 1 channel: %v", s.Name, sc, err)
				continue
			}
			if !base.Detected && !base.Neutralized {
				t.Errorf("%s/%v: neither detected nor neutralized", s.Name, sc)
			}
			for _, channels := range []int{2, 4, 8} {
				rep, err := attack.ExecuteSharded(s.Factory, s.Split, sc, channels)
				if err != nil {
					t.Errorf("%s/%v: %d channels: %v", s.Name, sc, channels, err)
					continue
				}
				if rep.Detected != base.Detected || rep.Neutralized != base.Neutralized ||
					rep.Where != base.Where {
					t.Errorf("%s/%v: classification diverged at %d channels: 1ch detected=%v/%s neutralized=%v, %dch detected=%v/%s neutralized=%v",
						s.Name, sc, channels,
						base.Detected, base.Where, base.Neutralized,
						channels, rep.Detected, rep.Where, rep.Neutralized)
				}
			}
		}
	}
}

func TestShardedUnevenChannelCounts(t *testing.T) {
	// Channel counts that do not divide the chunk count evenly give the
	// first channels one extra chunk each; every local address must still
	// land inside its controller's data region and the classification must
	// match the single-channel reference. (Sizing channels as
	// totalBytes/channels used to reject these configurations outright.)
	for _, sc := range []attack.Scenario{attack.TamperData, attack.ReplayData, attack.EraseTracking} {
		base, err := attack.Execute(steins.Factory, true, sc)
		if err != nil {
			t.Fatalf("%v: 1 channel: %v", sc, err)
		}
		for _, channels := range []int{3, 5, 6, 7} {
			rep, err := attack.ExecuteSharded(steins.Factory, true, sc, channels)
			if err != nil {
				t.Errorf("%v: %d channels: %v", sc, channels, err)
				continue
			}
			if rep.Detected != base.Detected || rep.Neutralized != base.Neutralized ||
				rep.Where != base.Where {
				t.Errorf("%v: classification diverged at %d channels: 1ch detected=%v/%s neutralized=%v, got detected=%v/%s neutralized=%v",
					sc, channels,
					base.Detected, base.Where, base.Neutralized,
					rep.Detected, rep.Where, rep.Neutralized)
			}
		}
	}
}

func TestWBInapplicable(t *testing.T) {
	rep, err := attack.Execute(wb.Factory, false, attack.TamperData)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Applicable {
		t.Fatal("WB reported as recoverable")
	}
}

func TestScenarioNames(t *testing.T) {
	seen := map[string]bool{}
	for _, sc := range attack.Scenarios() {
		name := sc.String()
		if seen[name] || name == "" {
			t.Fatalf("bad scenario name %q", name)
		}
		seen[name] = true
	}
}
