// Package arena provides chunked sparse arrays for hot-path metadata
// keyed by dense uint64 indices (line numbers, leaf indices). The memory
// controller and the NVM device previously kept this state in Go maps;
// a map lookup costs a hash, a probe sequence and (for pointer-valued
// maps) an allocation per entry, all on the per-operation critical path.
//
// An arena trades that for O(1) arithmetic: fixed-size chunks are
// allocated on first touch, so memory stays proportional to the touched
// index range while access is a shift, a bounds check and an add.
// Iteration (ForEach) visits slots in strictly ascending index order,
// which makes every emitter built on top of an arena deterministic by
// construction — no sort-before-emit step, no map-order ties.
//
// The zero value of T is an empty arena ready for use. Arenas are not
// safe for concurrent use, matching the single-owner discipline of the
// structures they back.
package arena

// ChunkLen is the number of slots per chunk. 512 slots keeps chunks in
// the tens-of-kilobytes range for line-sized payloads (cheap to allocate,
// friendly to the allocator's size classes) while keeping the chunk
// directory small even for multi-gigabyte index spaces.
const ChunkLen = 1 << chunkShift

const chunkShift = 9

// T is a chunked sparse array of V keyed by uint64 index.
type T[V any] struct {
	chunks []*[ChunkLen]V
}

// Get returns the value at index i, or the zero V if the slot was never
// touched.
func (a *T[V]) Get(i uint64) V {
	if p := a.Probe(i); p != nil {
		return *p
	}
	var zero V
	return zero
}

// Probe returns a pointer to slot i if its chunk exists, else nil. It
// never allocates; use it on read paths.
func (a *T[V]) Probe(i uint64) *V {
	c := i >> chunkShift
	if c >= uint64(len(a.chunks)) || a.chunks[c] == nil {
		return nil
	}
	return &a.chunks[c][i&(ChunkLen-1)]
}

// Ptr returns a pointer to slot i, allocating its chunk (and growing the
// chunk directory) as needed. Returned pointers stay valid for the life
// of the arena: chunks are never moved or freed except by Reset.
func (a *T[V]) Ptr(i uint64) *V {
	c := i >> chunkShift
	if c >= uint64(len(a.chunks)) {
		grown := make([]*[ChunkLen]V, c+1)
		copy(grown, a.chunks)
		a.chunks = grown
	}
	if a.chunks[c] == nil {
		a.chunks[c] = new([ChunkLen]V)
	}
	return &a.chunks[c][i&(ChunkLen-1)]
}

// Reset drops every chunk, returning the arena to its empty state.
func (a *T[V]) Reset() { a.chunks = nil }

// ForEach visits every slot of every allocated chunk in strictly
// ascending index order, including slots still holding the zero V — the
// callback filters if it only wants populated entries. Pointers passed to
// fn are the live slots; fn may mutate them.
func (a *T[V]) ForEach(fn func(i uint64, v *V)) {
	for c, chunk := range a.chunks {
		if chunk == nil {
			continue
		}
		base := uint64(c) << chunkShift
		for j := range chunk {
			fn(base+uint64(j), &chunk[j])
		}
	}
}
