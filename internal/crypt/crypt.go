// Package crypt provides the cryptographic primitives of the secure memory
// controller: keyed MACs for integrity (HMAC in the paper) and one-time-pad
// generation for counter-mode encryption (AES-CTR in the paper).
//
// Both primitives are behind small interfaces with two implementations
// each: a fast from-scratch variant (SipHash-2-4 MAC, xorshift-mixed pad)
// used by default so multi-million-request simulations stay quick, and a
// stdlib-crypto variant (HMAC-SHA-256, AES-CTR) for functional security
// testing. Simulated latency and energy are charged from configuration
// constants (Table I: 40-cycle hash), never from host crypto speed, so the
// choice does not affect any reported metric.
package crypt

import (
	"crypto/aes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
)

// Key is a 128-bit secret key held inside the trusted processor domain.
type Key [16]byte

// NewKey derives a Key from a seed; convenient for deterministic tests.
func NewKey(seed uint64) Key {
	var k Key
	binary.LittleEndian.PutUint64(k[0:8], seed)
	binary.LittleEndian.PutUint64(k[8:16], seed^0x5bd1e9955bd1e995)
	return k
}

// MAC computes 64-bit keyed message authentication codes. The 64-bit output
// width matches the HMAC field of SIT nodes and the per-data-block HMAC.
type MAC interface {
	// Sum64 returns the keyed MAC of msg.
	Sum64(key Key, msg []byte) uint64
	// Name identifies the implementation in logs and stats.
	Name() string
}

// BatchMAC is an optional fast path a MAC may implement: compute the MACs
// of n equal-size messages packed back-to-back in msgs (n = len(out),
// len(msgs) = n*size) in one call. Implementations must produce exactly
// the values Sum64 would for each message; batching only amortizes the
// per-call setup (key schedule, interface dispatch).
type BatchMAC interface {
	Sum64Batch(key Key, msgs []byte, size int, out []uint64)
}

// Sum64Batch computes out[i] = m.Sum64(key, msgs[i*size:(i+1)*size]),
// using the implementation's batch fast path when it has one.
func Sum64Batch(m MAC, key Key, msgs []byte, size int, out []uint64) {
	if bm, ok := m.(BatchMAC); ok {
		bm.Sum64Batch(key, msgs, size, out)
		return
	}
	for i := range out {
		out[i] = m.Sum64(key, msgs[i*size:(i+1)*size])
	}
}

// OTPGen produces 64-byte one-time pads from (key, address, counter), the
// CME construction of §II-B. Pads are unique as long as (addr, counter)
// pairs never repeat under one key.
type OTPGen interface {
	// Pad fills dst (64 bytes) with the one-time pad.
	Pad(dst *[64]byte, key Key, addr uint64, counter uint64)
	Name() string
}

// --- SipHash-2-4 -----------------------------------------------------------

// SipMAC is a from-scratch SipHash-2-4 implementation: a fast keyed PRF with
// 64-bit output, the default MAC for simulation runs.
type SipMAC struct{}

// Name implements MAC.
func (SipMAC) Name() string { return "siphash-2-4" }

// Sum64 implements MAC.
func (SipMAC) Sum64(key Key, msg []byte) uint64 {
	k0 := binary.LittleEndian.Uint64(key[0:8])
	k1 := binary.LittleEndian.Uint64(key[8:16])
	return sipCore(k0, k1, msg)
}

// Sum64Batch implements BatchMAC: the key words are decoded once for the
// whole window and each message runs through the shared core, so batched
// callers skip the per-message interface dispatch and key decode.
func (SipMAC) Sum64Batch(key Key, msgs []byte, size int, out []uint64) {
	k0 := binary.LittleEndian.Uint64(key[0:8])
	k1 := binary.LittleEndian.Uint64(key[8:16])
	for i := range out {
		out[i] = sipCore(k0, k1, msgs[i*size:(i+1)*size])
	}
}

// sipCore is SipHash-2-4 over msg with decoded key words; Sum64 and
// Sum64Batch share it so both paths produce identical values.
func sipCore(k0, k1 uint64, msg []byte) uint64 {
	v0 := k0 ^ 0x736f6d6570736575
	v1 := k1 ^ 0x646f72616e646f6d
	v2 := k0 ^ 0x6c7967656e657261
	v3 := k1 ^ 0x7465646279746573

	round := func() {
		v0 += v1
		v1 = rotl(v1, 13)
		v1 ^= v0
		v0 = rotl(v0, 32)
		v2 += v3
		v3 = rotl(v3, 16)
		v3 ^= v2
		v0 += v3
		v3 = rotl(v3, 21)
		v3 ^= v0
		v2 += v1
		v1 = rotl(v1, 17)
		v1 ^= v2
		v2 = rotl(v2, 32)
	}

	n := len(msg)
	i := 0
	for ; i+8 <= n; i += 8 {
		m := binary.LittleEndian.Uint64(msg[i:])
		v3 ^= m
		round()
		round()
		v0 ^= m
	}
	var last uint64
	for j := 0; i+j < n; j++ {
		last |= uint64(msg[i+j]) << (8 * uint(j))
	}
	last |= uint64(n) << 56
	v3 ^= last
	round()
	round()
	v0 ^= last
	v2 ^= 0xff
	round()
	round()
	round()
	round()
	return v0 ^ v1 ^ v2 ^ v3
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// --- HMAC-SHA-256 ----------------------------------------------------------

// HMACSHA256 is the stdlib HMAC-SHA-256 MAC truncated to 64 bits, the
// construction named by the paper. Use for functional security tests.
type HMACSHA256 struct{}

// Name implements MAC.
func (HMACSHA256) Name() string { return "hmac-sha256" }

// Sum64 implements MAC.
func (HMACSHA256) Sum64(key Key, msg []byte) uint64 {
	h := hmac.New(sha256.New, key[:])
	h.Write(msg)
	return binary.LittleEndian.Uint64(h.Sum(nil)[:8])
}

// --- Fast pad ---------------------------------------------------------------

// FastPad generates 64-byte pads via splitmix64 mixing of
// (key, addr, counter); it is not cryptographically strong but is unique
// per input tuple and two orders of magnitude faster than AES in software,
// which keeps long simulations cheap.
type FastPad struct{}

// Name implements OTPGen.
func (FastPad) Name() string { return "fastpad" }

// Pad implements OTPGen.
func (FastPad) Pad(dst *[64]byte, key Key, addr uint64, counter uint64) {
	k0 := binary.LittleEndian.Uint64(key[0:8])
	k1 := binary.LittleEndian.Uint64(key[8:16])
	x := k0 ^ addr*0x9e3779b97f4a7c15 ^ counter*0xc2b2ae3d27d4eb4f
	y := k1 ^ addr ^ rotl(counter, 31)
	for i := 0; i < 64; i += 8 {
		x += 0x9e3779b97f4a7c15
		z := x ^ y
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		binary.LittleEndian.PutUint64(dst[i:], z)
		y = rotl(y, 13) + z
	}
}

// --- AES-CTR pad -------------------------------------------------------------

// AESPad generates pads with AES-128 in counter mode over four consecutive
// 16-byte blocks of (addr, counter, block index), the OTP construction of
// §II-B.
type AESPad struct{}

// Name implements OTPGen.
func (AESPad) Name() string { return "aes-ctr" }

// Pad implements OTPGen.
func (AESPad) Pad(dst *[64]byte, key Key, addr uint64, counter uint64) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		// A 16-byte key can never fail; keep the impossible branch loud.
		panic("crypt: aes.NewCipher: " + err.Error())
	}
	var in [16]byte
	binary.LittleEndian.PutUint64(in[0:8], addr)
	for i := 0; i < 4; i++ {
		binary.LittleEndian.PutUint64(in[8:16], counter<<2|uint64(i))
		block.Encrypt(dst[i*16:(i+1)*16], in[:])
	}
}

// XOR64 XORs the 64-byte pad into dst in place, the encrypt/decrypt step of
// counter-mode encryption.
func XOR64(dst *[64]byte, pad *[64]byte) {
	for i := 0; i < 64; i += 8 {
		d := binary.LittleEndian.Uint64(dst[i:])
		p := binary.LittleEndian.Uint64(pad[i:])
		binary.LittleEndian.PutUint64(dst[i:], d^p)
	}
}
