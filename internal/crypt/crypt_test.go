package crypt

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"
)

var macs = []MAC{SipMAC{}, HMACSHA256{}}
var pads = []OTPGen{FastPad{}, AESPad{}}

func TestSipHashVectors(t *testing.T) {
	// Reference vectors from the SipHash paper (Aumasson & Bernstein):
	// key = 000102...0f, messages = "", 00, 0001, ... (first bytes shown).
	var key Key
	for i := range key {
		key[i] = byte(i)
	}
	want := []uint64{
		0x726fdb47dd0e0e31,
		0x74f839c593dc67fd,
		0x0d6c8009d9a94f5a,
		0x85676696d7fb7e2d,
		0xcf2794e0277187b7,
		0x18765564cd99a68d,
		0xcbc9466e58fee3ce,
		0xab0200f58b01d137,
	}
	msg := make([]byte, 0, 8)
	for i, w := range want {
		if got := (SipMAC{}).Sum64(key, msg); got != w {
			t.Errorf("siphash vector %d: got %#x, want %#x", i, got, w)
		}
		msg = append(msg, byte(i))
	}
}

func TestMACDeterministic(t *testing.T) {
	for _, m := range macs {
		key := NewKey(1)
		msg := []byte("the quick brown fox")
		if m.Sum64(key, msg) != m.Sum64(key, msg) {
			t.Errorf("%s: same input produced different MACs", m.Name())
		}
	}
}

func TestMACKeySeparation(t *testing.T) {
	for _, m := range macs {
		msg := []byte("payload")
		if m.Sum64(NewKey(1), msg) == m.Sum64(NewKey(2), msg) {
			t.Errorf("%s: different keys produced identical MACs", m.Name())
		}
	}
}

func TestMACMessageSensitivity(t *testing.T) {
	for _, m := range macs {
		key := NewKey(9)
		base := make([]byte, 64)
		ref := m.Sum64(key, base)
		for bit := 0; bit < 64*8; bit += 37 {
			mut := make([]byte, 64)
			copy(mut, base)
			mut[bit/8] ^= 1 << uint(bit%8)
			if m.Sum64(key, mut) == ref {
				t.Errorf("%s: flipping bit %d left MAC unchanged", m.Name(), bit)
			}
		}
	}
}

func TestMACLengthExtensionDistinct(t *testing.T) {
	// Messages that are prefixes of each other must not collide (SipHash
	// encodes the length in the final block).
	for _, m := range macs {
		key := NewKey(4)
		a := m.Sum64(key, []byte{1, 2, 3})
		b := m.Sum64(key, []byte{1, 2, 3, 0})
		if a == b {
			t.Errorf("%s: prefix and zero-extended message collide", m.Name())
		}
	}
}

func TestMACQuickNoTrivialCollisions(t *testing.T) {
	m := SipMAC{}
	key := NewKey(77)
	f := func(a, b []byte) bool {
		if bytes.Equal(a, b) {
			return true
		}
		return m.Sum64(key, a) != m.Sum64(key, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPadDeterministic(t *testing.T) {
	for _, p := range pads {
		var a, b [64]byte
		p.Pad(&a, NewKey(3), 0x1000, 7)
		p.Pad(&b, NewKey(3), 0x1000, 7)
		if a != b {
			t.Errorf("%s: same inputs produced different pads", p.Name())
		}
	}
}

func TestPadUniquePerCounter(t *testing.T) {
	for _, p := range pads {
		seen := map[[64]byte]uint64{}
		key := NewKey(5)
		for ctr := uint64(0); ctr < 512; ctr++ {
			var pad [64]byte
			p.Pad(&pad, key, 0xdead00, ctr)
			if prev, dup := seen[pad]; dup {
				t.Fatalf("%s: counters %d and %d produced identical pads", p.Name(), prev, ctr)
			}
			seen[pad] = ctr
		}
	}
}

func TestPadUniquePerAddress(t *testing.T) {
	for _, p := range pads {
		seen := map[[64]byte]uint64{}
		key := NewKey(6)
		for a := uint64(0); a < 512; a++ {
			var pad [64]byte
			p.Pad(&pad, key, a*64, 1)
			if prev, dup := seen[pad]; dup {
				t.Fatalf("%s: addresses %d and %d produced identical pads", p.Name(), prev, a*64)
			}
			seen[pad] = a * 64
		}
	}
}

func TestXOR64RoundTrip(t *testing.T) {
	f := func(data [64]byte, seed uint64) bool {
		var pad [64]byte
		FastPad{}.Pad(&pad, NewKey(seed), seed*64, seed)
		enc := data
		XOR64(&enc, &pad)
		if enc == data && pad != ([64]byte{}) {
			return false // encryption must change the data for non-zero pads
		}
		XOR64(&enc, &pad)
		return enc == data
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAESPadMatchesAESBlockStructure(t *testing.T) {
	// The four 16-byte blocks of one pad must be pairwise distinct: AES is
	// a permutation and the four inputs differ in the embedded block index.
	var pad [64]byte
	AESPad{}.Pad(&pad, NewKey(8), 0x40, 9)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if bytes.Equal(pad[i*16:(i+1)*16], pad[j*16:(j+1)*16]) {
				t.Fatalf("pad blocks %d and %d identical", i, j)
			}
		}
	}
}

func TestNewKeyDistinct(t *testing.T) {
	if NewKey(1) == NewKey(2) {
		t.Fatal("NewKey(1) == NewKey(2)")
	}
}

func TestCounterEncoding(t *testing.T) {
	// Guard the counter<<2|i packing in AESPad: consecutive counters must
	// not alias (counter 1 block 0 vs counter 0 block 4 cannot exist since
	// block index < 4).
	var a, b [64]byte
	AESPad{}.Pad(&a, NewKey(2), 0, 0)
	AESPad{}.Pad(&b, NewKey(2), 0, 1)
	if bytes.Equal(a[:], b[:]) {
		t.Fatal("counter 0 and 1 pads identical")
	}
	// Explicitly check the packed values are disjoint sets.
	set := map[uint64]bool{}
	for ctr := uint64(0); ctr < 4; ctr++ {
		for i := uint64(0); i < 4; i++ {
			v := ctr<<2 | i
			if set[v] {
				t.Fatalf("packed CTR value %d repeats", v)
			}
			set[v] = true
		}
	}
	_ = binary.LittleEndian // keep import if edits drop usage above
}

func BenchmarkSipMAC64B(b *testing.B) {
	key := NewKey(1)
	msg := make([]byte, 64)
	m := SipMAC{}
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		_ = m.Sum64(key, msg)
	}
}

func BenchmarkHMACSHA256_64B(b *testing.B) {
	key := NewKey(1)
	msg := make([]byte, 64)
	m := HMACSHA256{}
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		_ = m.Sum64(key, msg)
	}
}

func BenchmarkFastPad(b *testing.B) {
	var pad [64]byte
	key := NewKey(1)
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		FastPad{}.Pad(&pad, key, uint64(i)*64, uint64(i))
	}
}

func BenchmarkAESPad(b *testing.B) {
	var pad [64]byte
	key := NewKey(1)
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		AESPad{}.Pad(&pad, key, uint64(i)*64, uint64(i))
	}
}
