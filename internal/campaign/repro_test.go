package campaign

import (
	"testing"

	"steins/internal/nvmem"
)

// The two minimized boundary cases the campaign found once degraded-mode
// cases ran the full tamper arsenal. Both are authentic-stale ReplayData
// strikes that the old blanket LInc forgiveness silently absorbed; under
// evidence arbitration both must classify as detected-quarantine. Kept as
// hand-pinned artifacts so any regression in the arbitration logic
// reproduces the original silent corruption here first.

// reproReplayUnderTornWrite is minimized campaign case 64 (seed-7 sweep):
// a ReplayData tamper landing while torn-crash media damage (TornOnCrash
// 0.25) heals around it. The media-torn excuse used to forgive the whole
// level-0 increment equality; exact accounting narrows the excuse to the
// torn line itself and the replayed leaf quarantines replay-shaped.
func reproReplayUnderTornWrite() *Artifact {
	return &Artifact{
		Case: Case{
			Index: 64, Scheme: "Steins-GC", Workload: "kv_uniform",
			Seed: 8548921452456689817, Channels: 4, Footprint: 128 << 10,
			Sched: Schedule{
				Degraded: true,
				Faults: nvmem.FaultConfig{
					Seed:             10216850002904328447,
					TransientPerRead: 0.00030000000000000003,
					DoubleBitFrac:    0.2,
					StuckPerWrite:    0.0002,
					TornOnCrash:      0.25,
				},
				Rounds: []Round{
					{Ops: 115, Crash: true, CrashEv: 3, CrashN: 77,
						Recrash: true, RecrashStep: 1, RecrashChan: 4},
					{Ops: 91, Crash: true, CrashEv: 2, CrashN: 2},
					{Ops: 130, Crash: true, CrashEv: 3, CrashN: 51,
						Tampers: []Tamper{
							{Scenario: 4, TargetIdx: 54935},
							{Scenario: 2, TargetIdx: 54189},
						}},
				},
			},
		},
		Verdict: DetectedQuarantine,
		Detail:  "recovery quarantined level 0 index 1 (cause replay-shaped, evidence none)",
	}
}

// reproReplayBehindAmbiguousQuarantine is minimized campaign case 28
// (seed-11 sweep): evidence-free data bit-flips force two ambiguous
// level-0 quarantines, and a ReplayData strike on a *different* leaf used
// to hide behind their standing verdict — the already-arbitrated band
// forgave the residual shortfall without fencing the replayed leaf. Now a
// residual mismatch at an arbitrated level quarantines the remaining
// suspects too.
func reproReplayBehindAmbiguousQuarantine() *Artifact {
	return &Artifact{
		Case: Case{
			Index: 28, Scheme: "Steins-GC", Workload: "kv_b_zipf",
			Seed: 7164261484067460021, Channels: 4, Footprint: 128 << 10,
			Sched: Schedule{
				Degraded: true,
				Faults: nvmem.FaultConfig{
					Seed:             4257955705281218343,
					TransientPerRead: 0.0002,
					DoubleBitFrac:    0.2,
					TornOnCrash:      0.25,
				},
				Rounds: []Round{
					{Ops: 70, Crash: true, CrashEv: 3, CrashN: 22,
						Recrash: true, RecrashStep: 16, RecrashChan: 6},
					{Ops: 84, Crash: true, CrashEv: 2, CrashN: 3,
						Recrash: true, RecrashStep: 9, RecrashChan: 0,
						Tampers:  []Tamper{{Scenario: 2, TargetIdx: 29803}},
						FlipData: 2},
					{Ops: 85, Crash: true, CrashEv: 1, CrashN: 6,
						Recrash: true, RecrashStep: 16, RecrashChan: 1,
						Tampers:   []Tamper{{Scenario: 5, TargetIdx: 28420}},
						FlipNodes: 1},
				},
			},
		},
		Verdict: DetectedQuarantine,
		Detail:  "recovery quarantined level 0 index 46 (cause ambiguous, evidence none)",
	}
}

// TestReplayBoundaryRepros replays both pinned artifacts and demands the
// exact recorded classification: verdict AND detail. A drift in either
// means the arbitration boundary moved — inspect before re-pinning.
func TestReplayBoundaryRepros(t *testing.T) {
	for _, a := range []*Artifact{
		reproReplayUnderTornWrite(),
		reproReplayBehindAmbiguousQuarantine(),
	} {
		res, ok := Replay(a)
		if !ok {
			t.Errorf("case %d (%s/%s): verdict %v, want %v (detail %q)",
				a.Case.Index, a.Case.Scheme, a.Case.Workload, res.Verdict, a.Verdict, res.Detail)
			continue
		}
		if res.Detail != a.Detail {
			t.Errorf("case %d (%s/%s): detail %q, want %q",
				a.Case.Index, a.Case.Scheme, a.Case.Workload, res.Detail, a.Detail)
		}
	}
}

// TestReplayBoundaryArtifactRoundTrip pins the codec over the boundary
// artifacts: encode → decode → encode must be byte-identical, so the
// repro files stay content-addressable.
func TestReplayBoundaryArtifactRoundTrip(t *testing.T) {
	for _, a := range []*Artifact{
		reproReplayUnderTornWrite(),
		reproReplayBehindAmbiguousQuarantine(),
	} {
		data, err := EncodeArtifact(a)
		if err != nil {
			t.Fatalf("case %d: encode: %v", a.Case.Index, err)
		}
		b, err := DecodeArtifact(data)
		if err != nil {
			t.Fatalf("case %d: decode: %v", a.Case.Index, err)
		}
		again, err := EncodeArtifact(b)
		if err != nil {
			t.Fatalf("case %d: re-encode: %v", a.Case.Index, err)
		}
		if string(again) != string(data) {
			t.Fatalf("case %d: artifact codec not canonical", a.Case.Index)
		}
	}
}
