// Schedule minimization: a failing case is shrunk — greedily, under a
// bounded re-run budget — before its repro artifact is emitted, so the
// artifact describes the smallest event sequence still reproducing the
// failure rather than the whole randomized soup it was found in.

package campaign

// Minimize shrinks c's schedule while it still classifies as Fail,
// spending at most budget case re-runs. The passes, in order: truncate the
// rounds after the failure, drop whole rounds, drop individual tampers,
// zero the flip counts, disable the re-crash, halve the drive windows.
// A non-positive budget returns the case unchanged.
func Minimize(c Case, budget int) Case {
	if budget <= 0 {
		return c
	}
	runs := 0
	fails := func(cand Case) bool {
		if runs >= budget {
			return false
		}
		runs++
		return RunCase(cand).Verdict == Fail
	}

	// Truncate trailing rounds: binary-search-free greedy from the tail,
	// since schedules are at most a handful of rounds.
	for len(c.Sched.Rounds) > 1 {
		cand := c
		cand.Sched.Rounds = append([]Round(nil), c.Sched.Rounds[:len(c.Sched.Rounds)-1]...)
		if !fails(cand) {
			break
		}
		c = cand
	}
	// Drop interior rounds.
	for i := 0; i < len(c.Sched.Rounds)-1; {
		cand := c
		cand.Sched.Rounds = append(append([]Round(nil), c.Sched.Rounds[:i]...), c.Sched.Rounds[i+1:]...)
		if fails(cand) {
			c = cand
		} else {
			i++
		}
	}
	// Drop tampers one at a time.
	for ri := range c.Sched.Rounds {
		for ti := 0; ti < len(c.Sched.Rounds[ri].Tampers); {
			cand := cloneCase(c)
			tams := &cand.Sched.Rounds[ri].Tampers
			*tams = append(append([]Tamper(nil), (*tams)[:ti]...), (*tams)[ti+1:]...)
			if len(*tams) == 0 {
				*tams = nil
			}
			if fails(cand) {
				c = cand
			} else {
				ti++
			}
		}
	}
	// Zero flips and the re-crash.
	for ri := range c.Sched.Rounds {
		rd := &c.Sched.Rounds[ri]
		if rd.FlipNodes > 0 || rd.FlipData > 0 {
			cand := cloneCase(c)
			cand.Sched.Rounds[ri].FlipNodes = 0
			cand.Sched.Rounds[ri].FlipData = 0
			if fails(cand) {
				c = cand
			}
		}
		if rd.Recrash {
			cand := cloneCase(c)
			cand.Sched.Rounds[ri].Recrash = false
			if fails(cand) {
				c = cand
			}
		}
	}
	// Halve drive windows while the failure survives.
	for ri := range c.Sched.Rounds {
		for c.Sched.Rounds[ri].Ops > 8 {
			cand := cloneCase(c)
			cand.Sched.Rounds[ri].Ops /= 2
			if !fails(cand) {
				break
			}
			c = cand
		}
	}
	return c
}

// cloneCase deep-copies the schedule so candidate mutations never alias
// the accepted case.
func cloneCase(c Case) Case {
	out := c
	out.Sched.Rounds = append([]Round(nil), c.Sched.Rounds...)
	for i := range out.Sched.Rounds {
		if t := out.Sched.Rounds[i].Tampers; t != nil {
			out.Sched.Rounds[i].Tampers = append([]Tamper(nil), t...)
		}
	}
	return out
}
