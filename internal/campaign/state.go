// Campaign checkpoint/resume: the aggregated report plus the generating
// config, gob-encoded inside the shared snapshot envelope under the
// adversarial-campaign payload kind. Because cases are derived purely from
// (config, index), resuming needs no simulator state — only the config,
// how many cases are done, and the aggregates so far; the resumed run's
// final report is byte-identical to an uninterrupted one.

package campaign

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"

	"steins/internal/snapshot"
)

// savedConfig mirrors Config's serializable knobs (gob cannot encode the
// Logf func field, so the config is flattened through this shape).
type savedConfig struct {
	Cases          int
	Seed           uint64
	Schemes        []string
	Channels       []int
	Workloads      []string
	FootprintBytes uint64
	OpsPerRound    int
	MaxRounds      int
	SelfCheckEvery int
	MinimizeBudget int
	ForceDegraded  bool
}

func (s savedConfig) config() Config {
	return Config{
		Cases: s.Cases, Seed: s.Seed, Schemes: s.Schemes, Channels: s.Channels,
		Workloads: s.Workloads, FootprintBytes: s.FootprintBytes,
		OpsPerRound: s.OpsPerRound, MaxRounds: s.MaxRounds,
		SelfCheckEvery: s.SelfCheckEvery, MinimizeBudget: s.MinimizeBudget,
		ForceDegraded: s.ForceDegraded,
	}
}

func saved(cfg *Config) savedConfig {
	return savedConfig{
		Cases: cfg.Cases, Seed: cfg.Seed, Schemes: cfg.Schemes, Channels: cfg.Channels,
		Workloads: cfg.Workloads, FootprintBytes: cfg.FootprintBytes,
		OpsPerRound: cfg.OpsPerRound, MaxRounds: cfg.MaxRounds,
		SelfCheckEvery: cfg.SelfCheckEvery, MinimizeBudget: cfg.MinimizeBudget,
		ForceDegraded: cfg.ForceDegraded,
	}
}

// State is the serialized campaign checkpoint.
type State struct {
	Config savedConfig
	Report Report // Report.Cases = cases completed so far
}

// SaveCheckpoint atomically writes a checkpoint to path.
func SaveCheckpoint(path string, cfg *Config, rep *Report) error {
	st := State{Config: saved(cfg), Report: *rep}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&st); err != nil {
		return fmt.Errorf("campaign: encode checkpoint: %w", err)
	}
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	tmp := f.Name()
	werr := snapshot.WriteEnvelope(f, snapshot.KindAdversarial, payload.Bytes())
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Chmod(tmp, 0o644)
	}
	if werr == nil {
		werr = os.Rename(tmp, path)
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("campaign: checkpoint: %w", werr)
	}
	return nil
}

// LoadCheckpoint reads a checkpoint; failures wrap the snapshot envelope
// sentinels.
func LoadCheckpoint(path string) (*State, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	payload, err := snapshot.ReadEnvelope(bytes.NewReader(data), snapshot.KindAdversarial)
	if err != nil {
		return nil, err
	}
	st := new(State)
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(st); err != nil {
		return nil, fmt.Errorf("%w: gob decode: %v", snapshot.ErrCorrupt, err)
	}
	if st.Report.Cases > st.Config.Cases {
		return nil, fmt.Errorf("%w: checkpoint claims %d/%d cases done",
			snapshot.ErrCorrupt, st.Report.Cases, st.Config.Cases)
	}
	return st, nil
}

// Resume continues a checkpointed campaign to completion, checkpointing
// every saveEvery cases back to the same path when saveEvery > 0.
func Resume(path string, saveEvery int, logf func(string, ...any)) (*Report, error) {
	st, err := LoadCheckpoint(path)
	if err != nil {
		return nil, err
	}
	cfg := st.Config.config()
	cfg.Logf = logf
	return RunFrom(cfg, &st.Report, path, saveEvery)
}
