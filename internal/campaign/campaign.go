// Package campaign is the deterministic adversarial-campaign engine: long
// seeded sequences of randomized hostile events — crash points at any
// controller event, media faults, deliberate tamper, re-crashes
// mid-recovery — interleaved into realistic workloads and executed against
// every recoverable scheme at several channel counts, with each case
// verified against a golden shadow model under a single contract: zero
// silent corruptions. Every failing case is minimized and emitted as a
// self-contained repro artifact that replays to the identical
// classification.
package campaign

import (
	"fmt"
	"sort"
	"strings"

	"steins/internal/rng"
)

// DefaultSchemes is the full evaluated scheme sweep.
func DefaultSchemes() []string {
	return []string{
		"WB-GC", "WB-SC", "ASIT", "STAR", "Steins-GC", "Steins-SC",
		"SCUE-GC", "SCUE-SC", "PipeSIT-GC", "PipeSIT-SC", "Triad-GC", "Triad-SC",
	}
}

// DefaultWorkloads is the campaign workload pool: the YCSB-like KV mixes
// plus the two write-ordered persistent workloads.
func DefaultWorkloads() []string {
	return []string{"kv_a_zipf", "kv_b_zipf", "kv_d_latest", "kv_uniform", "pers_queue", "pers_hash"}
}

// Config parameterises one campaign.
type Config struct {
	Cases int
	Seed  uint64

	Schemes   []string // default DefaultSchemes
	Channels  []int    // default 1, 2, 4
	Workloads []string // default DefaultWorkloads

	FootprintBytes uint64 // per-case data footprint (default 128 KiB)
	OpsPerRound    int    // mean drive window per round (default 120)
	MaxRounds      int    // rounds per case are drawn from [1, MaxRounds]

	// SelfCheckEvery makes every Nth case a deliberate-corruption case: its
	// golden shadow is falsified pre-verify, so it MUST classify as FAIL.
	// A sabotage case that does not fail is a broken oracle and fails the
	// campaign itself. 0 disables.
	SelfCheckEvery int

	// MinimizeBudget bounds the re-runs spent shrinking a failing case's
	// schedule before the artifact is emitted (default 40; negative
	// disables minimization).
	MinimizeBudget int

	// ForceDegraded runs every case with degraded recovery instead of
	// drawing the mode 50/50 — the CI slice that pins the lifted tamper
	// gate: the full adversarial grammar against the arbitration/
	// quarantine path on every single case. The underlying random draw is
	// still consumed, so a forced campaign's schedules differ from an
	// unforced one ONLY in the mode bit and sliced runs stay
	// byte-reproducible under -verify.
	ForceDegraded bool

	Logf func(format string, args ...any)
}

func (cfg *Config) setDefaults() {
	if cfg.Cases <= 0 {
		cfg.Cases = 1000
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if len(cfg.Schemes) == 0 {
		cfg.Schemes = DefaultSchemes()
	}
	if len(cfg.Channels) == 0 {
		cfg.Channels = []int{1, 2, 4}
	}
	if len(cfg.Workloads) == 0 {
		cfg.Workloads = DefaultWorkloads()
	}
	if cfg.FootprintBytes == 0 {
		cfg.FootprintBytes = 128 << 10
	}
	if cfg.OpsPerRound <= 0 {
		cfg.OpsPerRound = 120
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 3
	}
	if cfg.MinimizeBudget == 0 {
		cfg.MinimizeBudget = 40
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
}

// GenCase derives case i of the campaign. The derivation is pure: the same
// (Config, i) always yields the same fully-specified case, which is what
// makes checkpoint/resume and the byte-identical-report guarantee work.
func GenCase(cfg *Config, i int) Case {
	cfg.setDefaults()
	c := Case{
		Index:     i,
		Scheme:    cfg.Schemes[i%len(cfg.Schemes)],
		Channels:  cfg.Channels[(i/len(cfg.Schemes))%len(cfg.Channels)],
		Seed:      caseSeed(cfg.Seed, i),
		Footprint: cfg.FootprintBytes,
	}
	sched := rng.New(c.Seed ^ 0xa0761d6478bd642f)
	c.Workload = cfg.Workloads[sched.Intn(len(cfg.Workloads))]
	c.Sched = drawSchedule(sched, cfg)
	if cfg.SelfCheckEvery > 0 && (i+1)%cfg.SelfCheckEvery == 0 {
		sabotage(&c.Sched)
	}
	return c
}

// caseSeed mixes the campaign seed and case index (splitmix64 step).
func caseSeed(seed uint64, i int) uint64 {
	x := seed + uint64(i+1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ x>>31
}

// sabotage rewrites a schedule into the deliberate-corruption self-check
// shape: a pure workload (no crashes, faults or tamper — nothing that could
// legitimately end the case early on any scheme, including the no-recovery
// baselines) whose golden shadow is falsified before the final verify.
func sabotage(s *Schedule) {
	s.Sabotage = true
	s.Faults = (Schedule{}).Faults
	s.Degraded = false
	for i := range s.Rounds {
		s.Rounds[i] = Round{Ops: s.Rounds[i].Ops}
	}
}

// SelfCheck runs one dedicated deliberate-corruption case end to end and
// returns its repro artifact: the case's golden shadow is falsified, the
// verify MUST classify it as Fail, and the artifact must Replay to the
// identical classification. It proves the whole failure path — oracle,
// artifact encoding, replay — is live, and returns an error if any link
// is not.
func SelfCheck(cfg Config) (*Artifact, error) {
	cfg.setDefaults()
	cfg.SelfCheckEvery = 1
	c := GenCase(&cfg, 0)
	res := RunCase(c)
	if res.Verdict != Fail {
		return nil, fmt.Errorf("campaign: sabotage case classified %s, want FAIL — the corruption oracle is broken", res.Verdict)
	}
	a := &Artifact{Case: c, Verdict: res.Verdict, Detail: res.Detail}
	if rres, ok := Replay(a); !ok {
		return nil, fmt.Errorf("campaign: sabotage replay classified %s, want %s — replay is not deterministic", rres.Verdict, a.Verdict)
	}
	return a, nil
}

// Failure records one failing (or selfcheck-misbehaving) case.
type Failure struct {
	Case     Case
	Verdict  Verdict
	Detail   string
	Expected bool // a sabotage case failing as designed
	Artifact []byte
}

func (f *Failure) Error() string {
	return fmt.Sprintf("campaign case %d (%s/%s ch=%d seed=%#x): %s: %s",
		f.Case.Index, f.Case.Scheme, f.Case.Workload, f.Case.Channels,
		f.Case.Seed, f.Verdict, f.Detail)
}

// cell aggregates verdict counts for one (scheme, channels) pair.
type cell struct {
	Scheme   string
	Channels int
	Counts   [numVerdicts]uint64
}

// Report is the deterministic campaign summary: same config and seed →
// byte-identical String() at any checkpoint/resume split.
type Report struct {
	Seed      uint64
	Cases     int
	Cells     []cell // sorted by (scheme sweep order, channels)
	Failures  []Failure
	Selfcheck struct {
		Run, Failed int // Failed counts sabotage cases that did NOT fail
	}
}

// SilentCorruptions counts unexpected failures — the campaign's headline
// number, contractually zero.
func (r *Report) SilentCorruptions() int {
	n := 0
	for _, f := range r.Failures {
		if !f.Expected {
			n++
		}
	}
	return n + r.Selfcheck.Failed
}

// String renders the report deterministically.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign seed=%d cases=%d\n", r.Seed, r.Cases)
	fmt.Fprintf(&b, "%-12s %2s", "scheme", "ch")
	for v := Verdict(0); v < numVerdicts; v++ {
		fmt.Fprintf(&b, " %9s", v)
	}
	b.WriteByte('\n')
	var totals [numVerdicts]uint64
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-12s %2d", c.Scheme, c.Channels)
		for v := range c.Counts {
			fmt.Fprintf(&b, " %9d", c.Counts[v])
			totals[v] += c.Counts[v]
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-12s %2s", "total", "")
	for v := range totals {
		fmt.Fprintf(&b, " %9d", totals[v])
	}
	b.WriteByte('\n')
	if r.Selfcheck.Run > 0 {
		fmt.Fprintf(&b, "selfcheck: %d deliberate-corruption cases, %d escaped the oracle\n",
			r.Selfcheck.Run, r.Selfcheck.Failed)
	}
	for i := range r.Failures {
		f := &r.Failures[i]
		if f.Expected {
			continue
		}
		fmt.Fprintf(&b, "FAILURE: %s\n", f.Error())
	}
	fmt.Fprintf(&b, "silent corruptions: %d\n", r.SilentCorruptions())
	return b.String()
}

// cellIndex locates (or creates) the aggregation cell for a case.
func (r *Report) cellFor(scheme string, channels int) *cell {
	for i := range r.Cells {
		if r.Cells[i].Scheme == scheme && r.Cells[i].Channels == channels {
			return &r.Cells[i]
		}
	}
	r.Cells = append(r.Cells, cell{Scheme: scheme, Channels: channels})
	return &r.Cells[len(r.Cells)-1]
}

// sortCells orders cells canonically: scheme sweep order, then channels.
func (r *Report) sortCells(schemes []string) {
	rank := map[string]int{}
	for i, s := range schemes {
		rank[s] = i
	}
	sort.SliceStable(r.Cells, func(i, j int) bool {
		a, b := &r.Cells[i], &r.Cells[j]
		if ra, rb := rank[a.Scheme], rank[b.Scheme]; ra != rb {
			return ra < rb
		}
		return a.Channels < b.Channels
	})
}

// Run executes the whole campaign from case 0. See RunFrom for the
// checkpointing variant.
func Run(cfg Config) (*Report, error) {
	return RunFrom(cfg, nil, "", 0)
}

// RunFrom executes the campaign starting at the state in rep (nil for a
// fresh report), checkpointing to snapshotPath every saveEvery cases when
// both are set. The returned report is byte-identical to an uninterrupted
// run of the same config.
func RunFrom(cfg Config, rep *Report, snapshotPath string, saveEvery int) (*Report, error) {
	cfg.setDefaults()
	start := 0
	if rep == nil {
		rep = &Report{Seed: cfg.Seed, Cases: cfg.Cases}
	} else {
		start = rep.Cases
		rep.Cases = cfg.Cases
	}
	for i := start; i < cfg.Cases; i++ {
		c := GenCase(&cfg, i)
		res := RunCase(c)
		switch {
		case c.Sched.Sabotage:
			// Sabotage cases check the oracle, not the scheme: they are
			// accounted on the selfcheck line, not in the scheme cells.
			rep.Selfcheck.Run++
			if res.Verdict != Fail {
				rep.Selfcheck.Failed++
				rep.Failures = append(rep.Failures, Failure{
					Case: c, Verdict: res.Verdict,
					Detail: "sabotage case escaped the oracle (expected FAIL)",
				})
			}
		case res.Verdict == Fail:
			rep.cellFor(c.Scheme, c.Channels).Counts[res.Verdict]++
			min := Minimize(c, cfg.MinimizeBudget)
			art, err := EncodeArtifact(&Artifact{Case: min, Verdict: res.Verdict, Detail: res.Detail})
			if err != nil {
				return rep, fmt.Errorf("campaign: encoding artifact for case %d: %w", i, err)
			}
			rep.Failures = append(rep.Failures, Failure{
				Case: min, Verdict: res.Verdict, Detail: res.Detail, Artifact: art,
			})
			cfg.Logf("case %d FAILED: %s/%s ch=%d: %s", i, c.Scheme, c.Workload, c.Channels, res.Detail)
		default:
			rep.cellFor(c.Scheme, c.Channels).Counts[res.Verdict]++
		}
		if (i+1)%500 == 0 {
			cfg.Logf("case %d/%d", i+1, cfg.Cases)
		}
		if snapshotPath != "" && saveEvery > 0 && (i+1)%saveEvery == 0 && i+1 < cfg.Cases {
			partial := *rep
			partial.Cases = i + 1
			if err := SaveCheckpoint(snapshotPath, &cfg, &partial); err != nil {
				return rep, err
			}
		}
	}
	rep.sortCells(cfg.Schemes)
	return rep, nil
}
