package campaign

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

func TestWriteSeedCorpus(t *testing.T) {
	if os.Getenv("CAMPAIGN_WRITE_CORPUS") == "" {
		t.Skip("set CAMPAIGN_WRITE_CORPUS=1 to regenerate testdata/fuzz")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzCampaignSchedule")
	for i, a := range corpusArtifacts() {
		data, err := EncodeArtifact(a)
		if err != nil {
			t.Fatal(err)
		}
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("seed-%02d", i)), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
