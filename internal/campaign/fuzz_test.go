package campaign

import (
	"bytes"
	"reflect"
	"testing"

	"steins/internal/nvmem"
)

// corpusArtifacts are the seed artifacts for FuzzCampaignSchedule: a
// representative spread of the schedule grammar (crashes on every event
// class, recrash, tampers, faults, degraded, sabotage, empty schedule).
// The same set is mirrored on disk under testdata/fuzz.
func corpusArtifacts() []*Artifact {
	return []*Artifact{
		{Case: Case{Scheme: "Steins-GC", Workload: "kv_a_zipf", Seed: 1, Channels: 1,
			Footprint: 64 << 10}},
		{Case: Case{Index: 7, Scheme: "WB-SC", Workload: "pers_queue", Seed: 2, Channels: 2,
			Footprint: 128 << 10,
			Sched:     Schedule{Rounds: []Round{{Ops: 90, Crash: true, CrashEv: 3, CrashN: 11}}}},
			Verdict: NoRecovery, Detail: "recovery is not supported"},
		{Case: Case{Index: 64, Scheme: "Steins-SC", Workload: "kv_d_latest", Seed: 0x76d3a2b1, Channels: 4,
			Footprint: 128 << 10,
			Sched: Schedule{
				Degraded: true,
				Faults: nvmem.FaultConfig{Seed: 5, TransientPerRead: 2e-4,
					DoubleBitFrac: 0.2, TornOnCrash: 0.5},
				Rounds: []Round{
					{Ops: 140, Crash: true, CrashEv: 1, CrashN: 4, Recrash: true,
						RecrashStep: 9, RecrashChan: 3, FlipNodes: 2, FlipData: 1},
					{Ops: 60},
				}}},
			Verdict: DegradedLoss, Detail: "degraded recovery lost 3 lines"},
		{Case: Case{Index: 99, Scheme: "Triad-GC", Workload: "kv_uniform", Seed: 12, Channels: 2,
			Footprint: 128 << 10,
			Sched: Schedule{Rounds: []Round{
				{Ops: 100, Crash: true, CrashEv: 4, CrashN: 2,
					Tampers: []Tamper{{Scenario: 2, TargetIdx: 17}, {Scenario: 6, TargetIdx: 0}}}}}},
			Verdict: DetectedRecovery, Detail: "recovery rejected: HMAC mismatch"},
		{Case: Case{Index: 24, Scheme: "SCUE-SC", Workload: "pers_hash", Seed: 3, Channels: 1,
			Footprint: 128 << 10,
			Sched:     Schedule{Sabotage: true, Rounds: []Round{{Ops: 80}}}},
			Verdict: Fail, Detail: "SILENT CORRUPTION: addr 0x40 differs"},
		// The replay-under-torn-write boundary case (see repro_test.go):
		// a degraded-mode ReplayData strike under torn-crash media that
		// must arbitrate to a replay-shaped quarantine.
		reproReplayUnderTornWrite(),
	}
}

// FuzzCampaignSchedule is the repro-artifact codec contract: the decoder
// never panics on arbitrary bytes, and any input it accepts re-encodes to
// the exact bytes it came from (the codec is canonical), with the decoded
// schedule surviving a second round trip unchanged. This is what lets a
// campaign failure artifact from any source be replayed byte-exactly.
func FuzzCampaignSchedule(f *testing.F) {
	for _, a := range corpusArtifacts() {
		data, err := EncodeArtifact(a)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte("STEINSNP garbage after the magic"))
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := DecodeArtifact(data)
		if err != nil {
			return // rejected cleanly: the only other acceptable outcome
		}
		again, err := EncodeArtifact(a)
		if err != nil {
			t.Fatalf("decoded artifact failed to re-encode: %v", err)
		}
		if !bytes.Equal(again, data) {
			t.Fatalf("codec not canonical: accepted %d bytes but re-encoded to %d different bytes", len(data), len(again))
		}
		b, err := DecodeArtifact(again)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatal("second decode diverged from first")
		}
	})
}
