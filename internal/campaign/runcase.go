// The case executor: builds the channel-sharded system a case describes,
// interprets its schedule round by round, and classifies the outcome
// against the golden shadow model under the zero-silent-corruption
// contract. Everything here is deterministic in (Case, Schedule): the only
// randomness is the execution RNG derived from the case seed, whose draw
// order depends only on the schedule being interpreted.

package campaign

import (
	"errors"
	"fmt"
	"sort"

	"steins/internal/attack"
	"steins/internal/crashfuzz"
	"steins/internal/memctrl"
	"steins/internal/nvmem"
	"steins/internal/rng"
	"steins/internal/sim"
	"steins/internal/trace"
)

// Verdict classifies one completed case.
type Verdict int

// Case verdicts, from most benign to most severe. Fail is the only
// unacceptable outcome: wrong data without a structured error, or an
// unclassified error anywhere.
const (
	// Clean: every round survived, recovery succeeded, full readback matched.
	Clean Verdict = iota
	// Neutralized: adversarial events were scheduled but changed nothing
	// observable — all data read back intact with no detection raised.
	Neutralized
	// DetectedRuntime: the integrity machinery rejected damage at a read.
	DetectedRuntime
	// DetectedRecovery: recovery refused the damaged persisted state.
	DetectedRecovery
	// NoRecovery: the scheme cannot recover at all (the WB baselines).
	NoRecovery
	// DegradedLoss: recovery degraded (healed/quarantined) and some lines
	// were lost to structured media errors — bounded, reported loss.
	DegradedLoss
	// SkippedCrash: the armed crash point was never reached; the case ran
	// as a pure workload window and verified clean.
	SkippedCrash
	// DetectedQuarantine: degraded recovery quarantined damage that no
	// recorded media evidence explains — replay-shaped or ambiguous — and
	// the fence (or the degradation report itself) surfaced the detection.
	DetectedQuarantine
	// Fail is a contract violation; the case emits a repro artifact.
	Fail
	numVerdicts
)

var verdictNames = [numVerdicts]string{
	"clean", "neutralized", "detected-runtime", "detected-recovery",
	"no-recovery", "degraded-loss", "skipped-crash", "detected-quarantine", "FAIL",
}

func (v Verdict) String() string {
	if v < 0 || v >= numVerdicts {
		return fmt.Sprintf("verdict(%d)", int(v))
	}
	return verdictNames[v]
}

// Case is one fully-specified campaign case.
type Case struct {
	Index     int
	Scheme    string
	Workload  string
	Seed      uint64 // case seed; schedule and execution RNGs derive from it
	Channels  int
	Footprint uint64
	Sched     Schedule
}

// CaseResult is the classification of one executed case.
type CaseResult struct {
	Verdict Verdict
	Detail  string // populated for Fail and the detection verdicts
}

// chunkBytes is the channel-interleave granularity, matching the attack
// harness: one split-leaf coverage, so a leaf's covered data stays on one
// channel at any channel count.
const chunkBytes = 4096

func routeAddr(channels int, addr uint64) (int, uint64) {
	if channels <= 1 {
		return 0, addr
	}
	chunk := addr / chunkBytes
	return int(chunk % uint64(channels)), (chunk/uint64(channels))*chunkBytes + addr%chunkBytes
}

func channelBytes(total uint64, channels int) uint64 {
	if channels <= 1 {
		return total
	}
	chunks := (total + chunkBytes - 1) / chunkBytes
	per := (chunks + uint64(channels) - 1) / uint64(channels)
	return per * chunkBytes
}

// structured error classes, mirroring the crashfuzz taxonomy.
func structuredMedia(err error) bool {
	return errors.Is(err, memctrl.ErrMediaFault) || errors.Is(err, nvmem.ErrUncorrectable)
}

func structuredIntegrity(err error) bool {
	return errors.Is(err, memctrl.ErrTamper) || errors.Is(err, memctrl.ErrReplay)
}

// caseRun is the mutable state of one executing case.
type caseRun struct {
	c      Case
	ctrls  []*memctrl.Controller
	gen    *trace.Generator
	exec   *rng.Source // execution-time draws (flip positions, recrash channel)
	shadow map[uint64][64]byte
	seq    uint64

	damaged  bool // any tamper/flip landed (integrity-class damage present)
	mediaHit bool // faults/flips/degraded could explain media errors

	detected    Verdict // highest detection observed (0 = none)
	detail      string
	mediaLost   uint64
	skipped     bool // some armed crash never fired
	crashedEver bool // at least one crash committed
	adversarial bool // any adversarial event was scheduled and executed
}

// RunCase executes one case and classifies it. It never returns an error:
// harness-level impossibilities (unknown scheme or workload) classify as
// Fail, since a repro artifact naming them must replay to the same verdict.
func RunCase(c Case) CaseResult {
	s, ok := sim.SchemeByName(c.Scheme)
	if !ok {
		return CaseResult{Fail, fmt.Sprintf("unknown scheme %q", c.Scheme)}
	}
	prof, ok := trace.ByName(c.Workload)
	if !ok {
		return CaseResult{Fail, fmt.Sprintf("unknown workload %q", c.Workload)}
	}
	if c.Channels < 1 || c.Footprint == 0 || c.Footprint%64 != 0 {
		return CaseResult{Fail, fmt.Sprintf("bad shape: %d channels, %d bytes", c.Channels, c.Footprint)}
	}
	prof.FootprintBytes = c.Footprint

	r := &caseRun{
		c:      c,
		exec:   rng.New(c.Seed ^ 0x5851f42d4c957f2d),
		shadow: make(map[uint64][64]byte),
	}
	var totalOps int
	for _, rd := range c.Sched.Rounds {
		totalOps += int(rd.Ops) + 1 // +1 replay-priming write per round
	}
	r.gen = trace.New(prof, c.Seed, totalOps)
	r.ctrls = make([]*memctrl.Controller, c.Channels)
	for i := range r.ctrls {
		cfg := memctrl.DefaultConfig(channelBytes(c.Footprint, c.Channels), s.Split)
		cfg.MetaCacheBytes = 4 << 10
		cfg.MetaCacheWays = 4
		cfg.DegradedRecovery = c.Sched.Degraded
		if c.Sched.Faults.Enabled() {
			f := c.Sched.Faults
			f.Seed = f.Seed + uint64(i)*0x9e37 // distinct per-channel stream
			cfg.NVM.Faults = f
			r.mediaHit = true
		}
		r.ctrls[i] = memctrl.New(cfg, s.Factory)
	}
	if c.Sched.Degraded {
		r.mediaHit = true
	}

	for ri := range c.Sched.Rounds {
		done := r.round(&c.Sched.Rounds[ri])
		if r.detail != "" && r.detected == Fail {
			return CaseResult{Fail, r.detail}
		}
		if done {
			break
		}
	}

	if c.Sched.Sabotage && len(r.shadow) > 0 {
		// The deliberate-corruption self-check: falsify the golden model for
		// one address so the final verify MUST flag a silent corruption. A
		// campaign whose sabotage cases don't fail has a broken oracle.
		addrs := r.sortedShadow()
		a := addrs[int(r.exec.Uint64n(uint64(len(addrs))))]
		b := r.shadow[a]
		b[0] ^= 0xFF
		r.shadow[a] = b
		r.adversarial = true
	}
	if r.detected == 0 || r.detected == DetectedRuntime || r.detected == DetectedQuarantine {
		// Final full readback (detection at recovery ends the case earlier;
		// a quarantine verdict keeps running — re-admission is part of the
		// lifecycle under test).
		r.verify()
		if r.detected == Fail {
			return CaseResult{Fail, r.detail}
		}
	}

	switch {
	case r.detected != 0:
		return CaseResult{r.detected, r.detail}
	case r.mediaLost > 0:
		return CaseResult{DegradedLoss, fmt.Sprintf("%d lines lost to structured media errors", r.mediaLost)}
	case r.skipped && !r.crashedEver:
		return CaseResult{SkippedCrash, ""}
	case r.adversarial:
		return CaseResult{Neutralized, ""}
	default:
		return CaseResult{Clean, ""}
	}
}

// round interprets one schedule round; done=true ends the case (detection,
// no-recovery, or failure).
func (r *caseRun) round(rd *Round) bool {
	// Capture replay material for the round's tampers before driving, and
	// prime replay scenarios with one extra write so the captured state is
	// genuinely stale by crash time.
	var mats []attack.Material
	var matAddrs []uint64
	for _, tm := range rd.Tampers {
		addr := r.tamperTarget(tm)
		ch, local := routeAddr(r.c.Channels, addr)
		// Ensure the target exists on media before capturing.
		if _, seen := r.shadow[addr]; !seen {
			if !r.driveWrite(addr) {
				return true
			}
		}
		mats = append(mats, attack.Capture(r.ctrls[ch], local))
		matAddrs = append(matAddrs, addr)
		if attack.Scenario(tm.Scenario) == attack.ReplayData || attack.Scenario(tm.Scenario) == attack.ReplayNode {
			if !r.driveWrite(addr) { // advance past the captured state
				return true
			}
		}
	}

	var inj *crashfuzz.Injector
	if rd.Crash {
		inj = crashfuzz.NewInjector(memctrl.Event(rd.CrashEv), uint64(rd.CrashN))
		for _, c := range r.ctrls {
			c.SetFaultHooks(inj)
		}
		r.adversarial = true
	}
	crashed := false
	for i := uint32(0); i < rd.Ops; i++ {
		op, more := r.gen.Next()
		if !more {
			break
		}
		if !r.drive(op) {
			return true
		}
		if inj != nil && inj.Armed() {
			crashed = true
			break
		}
	}
	if inj != nil {
		for _, c := range r.ctrls {
			c.SetFaultHooks(nil)
		}
	}
	if !rd.Crash {
		return false
	}
	if !crashed {
		r.skipped = true
		return false
	}

	// The crash commits at the boundary of the request that retired the
	// armed event (ADR/WPQ model): all channels lose volatile state.
	r.crashedEver = true
	for _, c := range r.ctrls {
		c.Crash()
	}

	for i, tm := range rd.Tampers {
		addr := matAddrs[i]
		ch, local := routeAddr(r.c.Channels, addr)
		attack.Inject(r.ctrls[ch], attack.Scenario(tm.Scenario), local, mats[i])
		r.damaged = true
	}
	for i := 0; i < int(rd.FlipNodes); i++ {
		if r.flipNode() {
			r.damaged = true
			r.mediaHit = true
		}
	}
	for i := 0; i < int(rd.FlipData); i++ {
		if r.flipData() {
			r.damaged = true
		}
	}

	return r.recoverAll(rd)
}

// recoverAll runs every channel's recovery sequentially (channel order is
// part of the deterministic schedule), honouring a mid-recovery re-crash.
func (r *caseRun) recoverAll(rd *Round) bool {
	recrashCh := -1
	if rd.Recrash {
		recrashCh = int(rd.RecrashChan) % r.c.Channels
	}
	for ch := 0; ch < r.c.Channels; ch++ {
		c := r.ctrls[ch]
		if ch == recrashCh {
			step := uint64(rd.RecrashStep)
			if step == 0 {
				step = 1
			}
			c.SetFaultHooks(crashfuzz.NewInjector(memctrl.EvRecoveryStep, step))
			var rrep memctrl.RecoveryReport
			rc, err := crashfuzz.CatchRecoveryCrash(func() error {
				rp, e := c.Recover()
				rrep = rp
				return e
			})
			c.SetFaultHooks(nil)
			r.adversarial = true
			if rc != nil {
				// The machine died again mid-recovery: every channel loses
				// volatile state (including those already recovered) and the
				// whole system recovers from the arbitrary prefix.
				for _, cc := range r.ctrls {
					cc.Crash()
				}
				ch = -1 // restart the loop; the injector is gone, so no loop
				recrashCh = -2
				continue
			}
			if r.classifyRecovery(err) {
				return true
			}
			if r.noteQuarantine(&rrep) {
				return true
			}
			continue
		}
		rep, err := c.Recover()
		if r.classifyRecovery(err) {
			return true
		}
		if r.noteQuarantine(&rep) {
			return true
		}
	}
	r.verify()
	return r.detected == Fail || r.detected == DetectedRuntime
}

// classifyRecovery maps a recovery error to a verdict; true ends the case.
func (r *caseRun) classifyRecovery(err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, memctrl.ErrNoRecovery):
		r.detected = NoRecovery
		return true
	case structuredIntegrity(err):
		if !r.damageExplainsIntegrity() {
			r.fail(fmt.Sprintf("recovery rejected undamaged state: %v", err))
			return true
		}
		r.detected, r.detail = DetectedRecovery, err.Error()
		return true
	case structuredMedia(err):
		if !r.mediaHit {
			r.fail(fmt.Sprintf("recovery reported a media fault on clean media: %v", err))
			return true
		}
		r.detected, r.detail = DetectedRecovery, err.Error()
		return true
	default:
		r.fail(fmt.Sprintf("recovery failed with an unclassified error: %v", err))
		return true
	}
}

// damageExplainsIntegrity reports whether an integrity verdict has a
// legitimate cause. Torn crash writes damage authenticated state too, so
// media faults with tearing count.
func (r *caseRun) damageExplainsIntegrity() bool {
	return r.damaged || r.mediaHit
}

// noteQuarantine folds a successful recovery's degradation report into the
// case state: a quarantine verdict no recorded media evidence supports is
// the detection of replay-shaped damage, and classifies the case even when
// no later read ever touches the fence. true ends the case (quarantining
// genuinely undamaged state is a contract violation).
func (r *caseRun) noteQuarantine(rep *memctrl.RecoveryReport) bool {
	if !rep.Degradation.ReplayShaped() {
		return false
	}
	if !r.damageExplainsIntegrity() {
		r.fail(fmt.Sprintf("recovery quarantined undamaged state: %+v", rep.Degradation.Records))
		return true
	}
	if r.detected == 0 || r.detected == DetectedRuntime {
		for _, rec := range rep.Degradation.Records {
			if !rec.Cause.MediaExplained() {
				r.detected = DetectedQuarantine
				r.detail = fmt.Sprintf("recovery quarantined level %d index %d (cause %s, evidence %s)",
					rec.Node.Level, rec.Node.Index, rec.Cause, rec.Evidence)
				break
			}
		}
	}
	return false
}

// drive executes one workload request against the routed channel,
// maintaining the shadow. false ends the case (contract violation).
func (r *caseRun) drive(op trace.Op) bool {
	ch, local := routeAddr(r.c.Channels, op.Addr)
	c := r.ctrls[ch]
	r.seq++
	if op.IsWrite {
		data := payload(op.Addr, r.seq)
		err := c.WriteData(op.Gap, local, data)
		if err == nil {
			r.shadow[op.Addr] = data
			return true
		}
		if structuredMedia(err) || (structuredIntegrity(err) && r.damageExplainsIntegrity()) {
			if !r.mediaHit && structuredMedia(err) {
				r.fail(fmt.Sprintf("write %#x media fault on clean media: %v", op.Addr, err))
				return false
			}
			// The line can no longer be trusted to hold either value.
			delete(r.shadow, op.Addr)
			return true
		}
		r.fail(fmt.Sprintf("write %#x rejected: %v", op.Addr, err))
		return false
	}
	got, err := c.ReadData(op.Gap, local)
	if err != nil {
		return r.classifyReadError(op.Addr, err)
	}
	if want, seen := r.shadow[op.Addr]; seen && got != want {
		r.fail(fmt.Sprintf("SILENT CORRUPTION: runtime read %#x returned wrong data", op.Addr))
		return false
	}
	return true
}

// driveWrite persists one synthetic write to addr (tamper-target priming).
func (r *caseRun) driveWrite(addr uint64) bool {
	return r.drive(trace.Op{Addr: addr, IsWrite: true, Gap: 1})
}

// classifyReadError folds one failing read into the case state; false ends
// the case.
func (r *caseRun) classifyReadError(addr uint64, err error) bool {
	var qe *memctrl.QuarantineError
	switch {
	case errors.As(err, &qe):
		// The quarantine fence carries its arbitration verdict. NOTE: this
		// arm must precede structuredMedia — QuarantineError unwraps to
		// ErrMediaFault for legacy classification.
		if qe.Cause.MediaExplained() {
			// Media-explained quarantine is bounded degraded loss, and only
			// real media damage may produce it.
			if !r.mediaHit {
				r.fail(fmt.Sprintf("read %#x quarantined on clean media: %v", addr, err))
				return false
			}
			r.mediaLost++
			return true
		}
		// A detection-class fence (replay-shaped, ambiguous) is legitimate
		// whenever any integrity damage landed — scheduled tampers included;
		// quarantining genuinely undamaged state is a contract violation.
		if !r.damageExplainsIntegrity() {
			r.fail(fmt.Sprintf("read %#x quarantined undamaged state: %v", addr, err))
			return false
		}
		if r.detected == 0 || r.detected == DetectedRuntime {
			r.detected, r.detail = DetectedQuarantine, err.Error()
		}
		return true
	case structuredMedia(err):
		if !r.mediaHit {
			r.fail(fmt.Sprintf("read %#x media fault on clean media: %v", addr, err))
			return false
		}
		r.mediaLost++
		return true
	case structuredIntegrity(err):
		if !r.damageExplainsIntegrity() {
			r.fail(fmt.Sprintf("read %#x integrity violation without damage: %v", addr, err))
			return false
		}
		if r.detected < DetectedRuntime {
			r.detected, r.detail = DetectedRuntime, err.Error()
		}
		return true
	default:
		r.fail(fmt.Sprintf("read %#x rejected with an unclassified error: %v", addr, err))
		return false
	}
}

// verify reads back every shadowed line in address order: each must return
// its last-persisted value or fail with a structured, explained error.
func (r *caseRun) verify() {
	for _, addr := range r.sortedShadow() {
		ch, local := routeAddr(r.c.Channels, addr)
		got, err := r.ctrls[ch].ReadData(1, local)
		if err != nil {
			if !r.classifyReadError(addr, err) {
				return
			}
			continue
		}
		if got != r.shadow[addr] {
			r.fail(fmt.Sprintf("SILENT CORRUPTION: post-recovery read %#x returned wrong data", addr))
			return
		}
	}
}

func (r *caseRun) sortedShadow() []uint64 {
	addrs := make([]uint64, 0, len(r.shadow))
	for a := range r.shadow {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	return addrs
}

func (r *caseRun) fail(detail string) {
	r.detected, r.detail = Fail, detail
}

// tamperTarget resolves a Tamper's target index against the current shadow
// (sorted, so the mapping is deterministic); an empty shadow targets the
// first data line.
func (r *caseRun) tamperTarget(tm Tamper) uint64 {
	addrs := r.sortedShadow()
	if len(addrs) == 0 {
		return 0
	}
	return addrs[int(tm.TargetIdx)%len(addrs)]
}

// flipNode flips one bit in a populated interior SIT node line of an
// execution-RNG-chosen channel, returning whether anything was hit.
func (r *caseRun) flipNode() bool {
	ch := int(r.exec.Uint64n(uint64(r.c.Channels)))
	c := r.ctrls[ch]
	geo := &c.Layout().Geo
	dev := c.Device()
	var addrs []uint64
	for k := 1; k < geo.Levels; k++ {
		for idx := uint64(0); idx < geo.LevelNodes[k]; idx++ {
			a := geo.NodeAddr(k, idx)
			if dev.Peek(a) != (nvmem.Line{}) {
				addrs = append(addrs, a)
			}
		}
	}
	if len(addrs) == 0 {
		return false
	}
	a := addrs[r.exec.Intn(len(addrs))]
	line := dev.Peek(a)
	bit := r.exec.Intn(nvmem.LineSize * 8)
	line[bit/8] ^= 1 << (bit % 8)
	dev.Poke(a, line)
	return true
}

// flipData flips one bit in a shadowed data line.
func (r *caseRun) flipData() bool {
	addrs := r.sortedShadow()
	if len(addrs) == 0 {
		return false
	}
	addr := addrs[int(r.exec.Uint64n(uint64(len(addrs))))]
	ch, local := routeAddr(r.c.Channels, addr)
	dev := r.ctrls[ch].Device()
	line := dev.Peek(local)
	bit := r.exec.Intn(nvmem.LineSize * 8)
	line[bit/8] ^= 1 << (bit % 8)
	dev.Poke(local, line)
	return true
}

// payload derives the deterministic plaintext for the seq-th write to addr.
func payload(addr, seq uint64) [64]byte {
	var b [64]byte
	x := addr ^ seq*0x9e3779b97f4a7c15
	for i := 0; i < 8; i++ {
		b[i*8] = byte(x >> (8 * i))
		b[i*8+1] = byte(seq >> (8 * i))
	}
	return b
}
