// Repro artifacts: a failing case serialized as a self-contained file —
// scheme, workload, seed, shape and the full (minimized) event schedule —
// wrapped in the shared snapshot envelope with its own payload kind.
//
// The codec is a manual canonical binary encoding rather than gob: the
// fuzz contract requires that DecodeArtifact never panics on arbitrary
// bytes and that every successfully decoded artifact re-encodes to the
// exact bytes it came from (so artifacts can be content-addressed and
// diffed). Canonical means the decoder rejects anything the encoder cannot
// produce: unknown versions, unknown flag bits, and trailing bytes.

package campaign

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"os"

	"steins/internal/nvmem"
	"steins/internal/snapshot"
)

// ArtifactVersion is the repro payload format version.
const ArtifactVersion = 1

// maxArtifactRounds bounds hostile round counts before allocation.
const maxArtifactRounds = 4096

// Artifact is one failing case plus its recorded classification; -repro
// replays the case and must reproduce the verdict exactly.
type Artifact struct {
	Case    Case
	Verdict Verdict
	Detail  string
}

type artifactWriter struct{ b bytes.Buffer }

func (w *artifactWriter) u8(v uint8)   { w.b.WriteByte(v) }
func (w *artifactWriter) u16(v uint16) { w.b.Write(binary.LittleEndian.AppendUint16(nil, v)) }
func (w *artifactWriter) u32(v uint32) { w.b.Write(binary.LittleEndian.AppendUint32(nil, v)) }
func (w *artifactWriter) u64(v uint64) { w.b.Write(binary.LittleEndian.AppendUint64(nil, v)) }
func (w *artifactWriter) str(s string) { w.u16(uint16(len(s))); w.b.WriteString(s) }

// EncodeArtifact serialises an artifact (envelope included).
func EncodeArtifact(a *Artifact) ([]byte, error) {
	if len(a.Case.Sched.Rounds) > maxArtifactRounds {
		return nil, fmt.Errorf("campaign: %d rounds exceed the artifact bound", len(a.Case.Sched.Rounds))
	}
	for _, s := range []string{a.Case.Scheme, a.Case.Workload, a.Detail} {
		if len(s) > math.MaxUint16 {
			return nil, fmt.Errorf("campaign: artifact string too long (%d bytes)", len(s))
		}
	}
	var w artifactWriter
	w.u16(ArtifactVersion)
	w.str(a.Case.Scheme)
	w.str(a.Case.Workload)
	w.u64(a.Case.Seed)
	w.u32(uint32(a.Case.Index))
	w.u8(uint8(a.Case.Channels))
	w.u64(a.Case.Footprint)
	var flags uint8
	if a.Case.Sched.Degraded {
		flags |= 1
	}
	if a.Case.Sched.Sabotage {
		flags |= 2
	}
	w.u8(flags)
	f := a.Case.Sched.Faults
	w.u64(f.Seed)
	w.u64(math.Float64bits(f.TransientPerRead))
	w.u64(math.Float64bits(f.DoubleBitFrac))
	w.u64(math.Float64bits(f.StuckPerWrite))
	w.u64(math.Float64bits(f.TornOnCrash))
	w.u16(uint16(a.Verdict))
	w.str(a.Detail)
	w.u16(uint16(len(a.Case.Sched.Rounds)))
	for _, rd := range a.Case.Sched.Rounds {
		if len(rd.Tampers) > math.MaxUint8 {
			return nil, fmt.Errorf("campaign: %d tampers exceed the artifact bound", len(rd.Tampers))
		}
		w.u32(rd.Ops)
		var rf uint8
		if rd.Crash {
			rf |= 1
		}
		if rd.Recrash {
			rf |= 2
		}
		w.u8(rf)
		w.u8(rd.CrashEv)
		w.u32(rd.CrashN)
		w.u32(rd.RecrashStep)
		w.u8(rd.RecrashChan)
		w.u8(rd.FlipNodes)
		w.u8(rd.FlipData)
		w.u8(uint8(len(rd.Tampers)))
		for _, tm := range rd.Tampers {
			w.u8(tm.Scenario)
			w.u32(tm.TargetIdx)
		}
	}
	var out bytes.Buffer
	if err := snapshot.WriteEnvelope(&out, snapshot.KindRepro, w.b.Bytes()); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// artifactReader is a bounds-checked cursor; every read reports failure
// through ok so malformed input can never panic the decoder.
type artifactReader struct {
	b   []byte
	off int
	ok  bool
}

func (r *artifactReader) take(n int) []byte {
	if !r.ok || n < 0 || len(r.b)-r.off < n {
		r.ok = false
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *artifactReader) u8() uint8 {
	if b := r.take(1); r.ok {
		return b[0]
	}
	return 0
}

func (r *artifactReader) u16() uint16 {
	if b := r.take(2); r.ok {
		return binary.LittleEndian.Uint16(b)
	}
	return 0
}

func (r *artifactReader) u32() uint32 {
	if b := r.take(4); r.ok {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (r *artifactReader) u64() uint64 {
	if b := r.take(8); r.ok {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

func (r *artifactReader) str() string {
	n := int(r.u16())
	if b := r.take(n); r.ok {
		return string(b)
	}
	return ""
}

// DecodeArtifact parses an artifact file (envelope included). It never
// panics; every failure wraps a snapshot envelope sentinel or reports the
// payload offset. Decode∘Encode is the identity on valid artifacts and
// Encode∘Decode is the identity on valid files.
func DecodeArtifact(data []byte) (*Artifact, error) {
	br := bytes.NewReader(data)
	payload, err := snapshot.ReadEnvelope(br, snapshot.KindRepro)
	if err != nil {
		return nil, err
	}
	// The envelope reader is stream-oriented; an artifact file is exactly
	// one envelope, so anything after it breaks canonicality.
	if br.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after repro envelope", snapshot.ErrCorrupt, br.Len())
	}
	r := &artifactReader{b: payload, ok: true}
	if v := r.u16(); !r.ok || v != ArtifactVersion {
		return nil, fmt.Errorf("%w: repro payload version %d, want %d", snapshot.ErrVersion, v, ArtifactVersion)
	}
	a := &Artifact{}
	a.Case.Scheme = r.str()
	a.Case.Workload = r.str()
	a.Case.Seed = r.u64()
	a.Case.Index = int(r.u32())
	a.Case.Channels = int(r.u8())
	a.Case.Footprint = r.u64()
	flags := r.u8()
	if flags&^uint8(3) != 0 {
		return nil, fmt.Errorf("%w: unknown schedule flags %#x", snapshot.ErrCorrupt, flags)
	}
	a.Case.Sched.Degraded = flags&1 != 0
	a.Case.Sched.Sabotage = flags&2 != 0
	a.Case.Sched.Faults = nvmem.FaultConfig{
		Seed:             r.u64(),
		TransientPerRead: math.Float64frombits(r.u64()),
		DoubleBitFrac:    math.Float64frombits(r.u64()),
		StuckPerWrite:    math.Float64frombits(r.u64()),
		TornOnCrash:      math.Float64frombits(r.u64()),
	}
	a.Verdict = Verdict(r.u16())
	a.Detail = r.str()
	nRounds := int(r.u16())
	if nRounds > maxArtifactRounds {
		return nil, fmt.Errorf("%w: %d rounds exceed the artifact bound", snapshot.ErrCorrupt, nRounds)
	}
	for i := 0; i < nRounds && r.ok; i++ {
		var rd Round
		rd.Ops = r.u32()
		rf := r.u8()
		if rf&^uint8(3) != 0 {
			return nil, fmt.Errorf("%w: unknown round flags %#x", snapshot.ErrCorrupt, rf)
		}
		rd.Crash = rf&1 != 0
		rd.Recrash = rf&2 != 0
		rd.CrashEv = r.u8()
		rd.CrashN = r.u32()
		rd.RecrashStep = r.u32()
		rd.RecrashChan = r.u8()
		rd.FlipNodes = r.u8()
		rd.FlipData = r.u8()
		nT := int(r.u8())
		for t := 0; t < nT && r.ok; t++ {
			rd.Tampers = append(rd.Tampers, Tamper{Scenario: r.u8(), TargetIdx: r.u32()})
		}
		a.Case.Sched.Rounds = append(a.Case.Sched.Rounds, rd)
	}
	if !r.ok {
		return nil, fmt.Errorf("%w: repro payload truncated at offset %d", snapshot.ErrTruncated, r.off)
	}
	if r.off != len(payload) {
		return nil, fmt.Errorf("%w: %d trailing bytes after repro payload", snapshot.ErrCorrupt, len(payload)-r.off)
	}
	return a, nil
}

// SaveArtifact writes an artifact to path.
func SaveArtifact(path string, a *Artifact) error {
	data, err := EncodeArtifact(a)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadArtifact reads an artifact from path.
func LoadArtifact(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeArtifact(data)
}

// Replay re-executes an artifact's case and reports whether the recorded
// classification reproduced.
func Replay(a *Artifact) (CaseResult, bool) {
	res := RunCase(a.Case)
	return res, res.Verdict == a.Verdict
}
