package campaign

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"

	"steins/internal/nvmem"
)

// testConfig keeps unit-test campaigns cheap: one third of the full sweep
// per axis still covers every scheme×channel cell at 108 cases.
func testConfig(cases int) Config {
	return Config{Cases: cases, Seed: 7, SelfCheckEvery: 25}
}

func TestCampaignDeterministic(t *testing.T) {
	a, err := Run(testConfig(108))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testConfig(108))
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("same seed produced different reports:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
	if n := a.SilentCorruptions(); n != 0 {
		t.Fatalf("campaign reported %d silent corruptions:\n%s", n, a)
	}
	if a.Selfcheck.Run == 0 {
		t.Fatal("no selfcheck cases ran")
	}
}

func TestCampaignCheckpointResume(t *testing.T) {
	cfg := testConfig(90)
	straight, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: execute the first 36 cases, checkpoint, reload, and
	// resume to the full target. The resumed report must be byte-identical.
	partialCfg := cfg
	partialCfg.Cases = 36
	partial, err := Run(partialCfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "campaign.snap")
	fullCfg := cfg
	fullCfg.setDefaults()
	if err := SaveCheckpoint(path, &fullCfg, partial); err != nil {
		t.Fatal(err)
	}
	resumed, err := Resume(path, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := resumed.String(), straight.String(); got != want {
		t.Fatalf("resumed report differs from straight run:\n--- resumed ---\n%s--- straight ---\n%s", got, want)
	}
}

func TestCheckpointRejectsWrongKind(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.snap")
	cfg := testConfig(10)
	cfg.setDefaults()
	rep := &Report{Seed: cfg.Seed, Cases: 0}
	if err := SaveCheckpoint(path, &cfg, rep); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err != nil {
		t.Fatalf("reload: %v", err)
	}
}

func TestSelfCheckEndToEnd(t *testing.T) {
	art, err := SelfCheck(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if art.Verdict != Fail {
		t.Fatalf("selfcheck verdict %s", art.Verdict)
	}
	data, err := EncodeArtifact(art)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(art, back) {
		t.Fatalf("artifact round trip diverged:\n%+v\nvs\n%+v", art, back)
	}
	if res, ok := Replay(back); !ok {
		t.Fatalf("replayed verdict %s, want %s", res.Verdict, back.Verdict)
	}
}

func TestArtifactCodecCanonical(t *testing.T) {
	a := &Artifact{
		Case: Case{
			Index: 123, Scheme: "Steins-SC", Workload: "kv_d_latest",
			Seed: 0xdeadbeefcafef00d, Channels: 4, Footprint: 128 << 10,
			Sched: Schedule{
				Degraded: true,
				Faults:   nvmem.FaultConfig{Seed: 9, TransientPerRead: 1e-4, TornOnCrash: 0.5},
				Rounds: []Round{
					{Ops: 77, Crash: true, CrashEv: 1, CrashN: 3, Recrash: true,
						RecrashStep: 5, RecrashChan: 2, FlipNodes: 1,
						Tampers: []Tamper{{Scenario: 2, TargetIdx: 9}, {Scenario: 5, TargetIdx: 0}}},
					{Ops: 10},
				},
			},
		},
		Verdict: Fail,
		Detail:  "SILENT CORRUPTION: test",
	}
	data, err := EncodeArtifact(a)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, back) {
		t.Fatalf("decode(encode(a)) != a:\n%+v\nvs\n%+v", a, back)
	}
	again, err := EncodeArtifact(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("encode(decode(bytes)) != bytes — codec not canonical")
	}
}

func TestArtifactDecodeNeverPanics(t *testing.T) {
	a := &Artifact{Case: Case{Scheme: "ASIT", Workload: "kv_a_zipf", Seed: 3,
		Channels: 2, Footprint: 64 << 10,
		Sched: Schedule{Rounds: []Round{{Ops: 5, Crash: true, CrashEv: 3, CrashN: 1}}}}}
	data, err := EncodeArtifact(a)
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation must error cleanly.
	for cut := 0; cut < len(data); cut++ {
		if _, err := DecodeArtifact(data[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Every single-byte corruption must error or decode — never panic.
	// (The CRC catches payload flips; header flips hit the sentinels.)
	for i := 0; i < len(data); i++ {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xFF
		_, _ = DecodeArtifact(mut)
	}
	if _, err := DecodeArtifact(nil); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestMinimizePreservesFailure(t *testing.T) {
	// A sabotage case fails by construction; minimization must return a
	// case that still fails and is no larger than the original.
	cfg := testConfig(1)
	cfg.SelfCheckEvery = 1
	c := GenCase(&cfg, 0)
	if RunCase(c).Verdict != Fail {
		t.Fatal("sabotage case did not fail")
	}
	min := Minimize(c, 30)
	if RunCase(min).Verdict != Fail {
		t.Fatal("minimized case no longer fails")
	}
	if len(min.Sched.Rounds) > len(c.Sched.Rounds) {
		t.Fatalf("minimization grew the schedule: %d -> %d rounds",
			len(c.Sched.Rounds), len(min.Sched.Rounds))
	}
}

func TestRunCaseDeterministic(t *testing.T) {
	// A tamper-heavy strict-mode case replays to the identical
	// classification, detail string included.
	c := Case{
		Index: 1, Scheme: "Steins-GC", Workload: "pers_hash", Seed: 41,
		Channels: 2, Footprint: 128 << 10,
		Sched: Schedule{Rounds: []Round{
			{Ops: 120, Crash: true, CrashEv: 3, CrashN: 60, Recrash: true,
				RecrashStep: 3, RecrashChan: 1,
				Tampers: []Tamper{{Scenario: 2, TargetIdx: 11}}},
		}},
	}
	a := RunCase(c)
	b := RunCase(c)
	if a != b {
		t.Fatalf("case replay diverged: %+v vs %+v", a, b)
	}
}

func TestWBClassifiesNoRecovery(t *testing.T) {
	c := Case{
		Scheme: "WB-GC", Workload: "kv_uniform", Seed: 5, Channels: 1,
		Footprint: 64 << 10,
		Sched: Schedule{Rounds: []Round{
			{Ops: 50, Crash: true, CrashEv: 3, CrashN: 10},
		}},
	}
	res := RunCase(c)
	if res.Verdict != NoRecovery {
		t.Fatalf("WB crash case classified %s, want %s", res.Verdict, NoRecovery)
	}
}
