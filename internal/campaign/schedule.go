// Schedule grammar: the complete, explicit description of one campaign
// case's adversarial event sequence. A Schedule is drawn once from the
// case's schedule RNG and then executed; because every execution-time
// choice is either recorded here or drawn from a second RNG seeded by the
// case seed, replaying the same (case spec, schedule) pair is
// byte-identical — which is what makes minimized repro artifacts exact.

package campaign

import (
	"steins/internal/attack"
	"steins/internal/memctrl"
	"steins/internal/nvmem"
	"steins/internal/rng"
)

// Tamper is one deliberate post-crash mutation of durable state: an attack
// scenario aimed at the TargetIdx-th shadowed address (modulo the shadow
// size at injection time, so minimization never invalidates it).
type Tamper struct {
	Scenario  uint8  // attack.Scenario
	TargetIdx uint32 // index into the sorted shadowed addresses
}

// Round is one drive window plus the adversarial events around its crash.
// A round with Crash false is a pure workload window; every other field
// only takes effect when the crash actually commits.
type Round struct {
	Ops uint32 // workload requests to drive

	Crash   bool
	CrashEv uint8  // memctrl.Event class arming the crash
	CrashN  uint32 // 1-based countdown within the class

	// Recrash aborts the recovery pass of channel RecrashChan (modulo the
	// channel count) at its RecrashStep-th recovery step, then crashes the
	// whole system again and re-recovers from that arbitrary prefix.
	Recrash     bool
	RecrashStep uint32
	RecrashChan uint8

	Tampers   []Tamper // applied between crash commit and recovery
	FlipNodes uint8    // interior SIT node lines to bit-flip post-crash
	FlipData  uint8    // data lines to bit-flip post-crash
}

// Schedule is one case's full event plan.
type Schedule struct {
	Degraded bool              // controllers run with degraded recovery
	Faults   nvmem.FaultConfig // device media-fault model (may be zero)
	Sabotage bool              // corrupt the golden shadow pre-verify (self-check)
	Rounds   []Round
}

// runtimeCrashEvents are the event classes a runtime crash can arm on;
// EvRecoveryStep is reserved for the Recrash mechanism.
var runtimeCrashEvents = []memctrl.Event{
	memctrl.EvLineWrite, memctrl.EvEviction, memctrl.EvRecordAppend, memctrl.EvOpRetired,
}

// tamperScenarios are the attack scenarios schedulable as campaign events.
var tamperScenarios = []attack.Scenario{
	attack.TamperData, attack.TamperTag, attack.ReplayData,
	attack.TamperNode, attack.ReplayNode, attack.EraseTracking,
	attack.MediaTag, attack.MediaRecord,
}

// drawSchedule generates one case's schedule from its schedule RNG. The
// draw order is fixed: changing any knob upstream changes the case seed,
// never the interpretation of an existing stream.
func drawSchedule(r *rng.Source, cfg *Config) Schedule {
	s := Schedule{}
	// ~1 in 4 cases run over faulty media; rates are kept low enough that
	// the workload itself stays mostly serviceable.
	if r.Bool(0.25) {
		s.Faults = nvmem.FaultConfig{
			Seed:             r.Uint64() | 1,
			TransientPerRead: float64(1+r.Intn(4)) * 1e-4,
			DoubleBitFrac:    0.2,
			StuckPerWrite:    float64(r.Intn(3)) * 1e-4,
			TornOnCrash:      float64(r.Intn(3)) * 0.25,
		}
	}
	s.Degraded = r.Bool(0.5) || cfg.ForceDegraded
	rounds := 1 + r.Intn(cfg.MaxRounds)
	for i := 0; i < rounds; i++ {
		rd := Round{Ops: uint32(cfg.OpsPerRound/2 + r.Intn(cfg.OpsPerRound))}
		if r.Bool(0.8) {
			rd.Crash = true
			ev := runtimeCrashEvents[r.Intn(len(runtimeCrashEvents))]
			rd.CrashEv = uint8(ev)
			// Countdowns are scaled per class: retired ops are bounded by
			// the round's op budget; the other classes fire only on writes
			// (or evictions), which read-heavy mixes produce sparsely, so
			// their countdowns stay small to keep the skip rate down.
			switch ev {
			case memctrl.EvOpRetired:
				rd.CrashN = uint32(1 + r.Intn(int(rd.Ops)))
			case memctrl.EvLineWrite:
				rd.CrashN = uint32(1 + r.Intn(int(rd.Ops)/4+1))
			default:
				rd.CrashN = uint32(1 + r.Intn(int(rd.Ops)/16+1))
			}
			if r.Bool(0.25) {
				rd.Recrash = true
				rd.RecrashStep = uint32(1 + r.Intn(40))
				rd.RecrashChan = uint8(r.Intn(8))
			}
			// Deliberate tamper is scheduled in BOTH strict and degraded
			// modes. Strict mode detects replayed authentic-stale state
			// through the exact trust-base LInc equalities. Degraded mode
			// used to forgive those equalities wholesale whenever media
			// damage made level increments unknowable — an exploitable
			// boundary this campaign found: a replay injected while damage
			// healed around it regressed the recovered counter without
			// tripping the relaxed check, and stale data verified silently.
			// Evidence arbitration closed it: a regression with no recorded
			// media evidence now quarantines as replay-shaped
			// (detected-quarantine), so degraded cases run the full
			// adversarial arsenal too. DESIGN.md tells the story.
			for r.Bool(0.35) && len(rd.Tampers) < 3 {
				rd.Tampers = append(rd.Tampers, Tamper{
					Scenario:  uint8(tamperScenarios[r.Intn(len(tamperScenarios))]),
					TargetIdx: uint32(r.Intn(1 << 16)),
				})
			}
			if r.Bool(0.2) {
				rd.FlipNodes = uint8(1 + r.Intn(2))
			}
			if r.Bool(0.15) {
				rd.FlipData = uint8(1 + r.Intn(2))
			}
		}
		s.Rounds = append(s.Rounds, rd)
	}
	return s
}
