// Package stats provides the small numeric and formatting helpers the
// figure generators share: normalisation against a baseline, geometric
// means for cross-workload averages, and aligned text tables.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
)

// Normalize divides each value by base. A zero or non-finite base cannot
// produce meaningful ratios, so it is reported as an error instead of
// poisoning every cell downstream (a degenerate run used to panic here
// and kill the whole figure sweep).
func Normalize(vals []float64, base float64) ([]float64, error) {
	if base == 0 || math.IsNaN(base) || math.IsInf(base, 0) {
		return nil, fmt.Errorf("stats: cannot normalise by %v", base)
	}
	out := make([]float64, len(vals))
	for i, v := range vals {
		out[i] = v / base
	}
	return out, nil
}

// GeoMean returns the geometric mean, the conventional cross-benchmark
// average for normalised metrics. Values that are not finite and positive
// carry no usable magnitude (a degenerate cell from a zero baseline), so
// they are skipped rather than aborting the average; if nothing usable
// remains the result is NaN. The empty slice stays 0 for backward
// compatibility.
func GeoMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum, n := 0.0, 0
	for _, v := range vals {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		sum += math.Log(v)
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean.
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// Table renders an aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
	Notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header width are dropped.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Rows returns the row data (for tests and machine output).
func (t *Table) Rows() [][]string { return t.rows }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	rule := make([]string, len(t.Headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, r := range t.rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// F formats a ratio-style float with three decimals; degenerate values
// (NaN, Inf — e.g. a ratio against a zero baseline) render as "n/a" so
// one bad cell does not wreck a table.
func F(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "n/a"
	}
	return fmt.Sprintf("%.3f", v)
}

// F2 formats with two decimals; degenerate values render as "n/a".
func F2(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "n/a"
	}
	return fmt.Sprintf("%.2f", v)
}

// Seconds formats nanoseconds as seconds with adaptive precision.
func Seconds(ns float64) string {
	s := ns / 1e9
	switch {
	case s >= 100:
		return fmt.Sprintf("%.0f s", s)
	case s >= 1:
		return fmt.Sprintf("%.2f s", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.2f ms", s*1e3)
	default:
		return fmt.Sprintf("%.1f us", s*1e6)
	}
}

// Bytes formats byte counts in binary units.
func Bytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

// tableJSON is the serialised form of a Table.
type tableJSON struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// MarshalJSON serialises the table for machine consumption
// (benchfigs -format json).
func (t *Table) MarshalJSON() ([]byte, error) {
	return json.Marshal(tableJSON{
		Title: t.Title, Headers: t.Headers, Rows: t.rows, Notes: t.Notes,
	})
}
