package stats

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestNormalize(t *testing.T) {
	got, err := Normalize([]float64{2, 4, 6}, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Normalize = %v", got)
		}
	}
}

func TestNormalizeDegenerateBase(t *testing.T) {
	for _, base := range []float64{0, math.NaN(), math.Inf(1)} {
		if _, err := Normalize([]float64{1}, base); err == nil {
			t.Fatalf("base %v: no error", base)
		}
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Fatalf("GeoMean = %v", g)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty GeoMean not 0")
	}
}

func TestGeoMeanSkipsDegenerateValues(t *testing.T) {
	// Non-positive and non-finite cells are skipped, not fatal: the mean
	// over the remaining usable values survives one bad cell.
	if g := GeoMean([]float64{1, 0, 4, math.NaN(), math.Inf(1), -3}); math.Abs(g-2) > 1e-12 {
		t.Fatalf("GeoMean with degenerate cells = %v, want 2", g)
	}
	if g := GeoMean([]float64{0, math.NaN()}); !math.IsNaN(g) {
		t.Fatalf("GeoMean with no usable cells = %v, want NaN", g)
	}
}

func TestFormatDegenerate(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if F(v) != "n/a" || F2(v) != "n/a" {
			t.Fatalf("F(%v) = %q, F2 = %q, want n/a", v, F(v), F2(v))
		}
	}
	if F(1.5) != "1.500" || F2(1.5) != "1.50" {
		t.Fatalf("finite formatting changed: %q %q", F(1.5), F2(1.5))
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean wrong")
	}
	if Mean(nil) != 0 {
		t.Fatal("empty Mean not 0")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Fig X", "workload", "WB", "Steins")
	tb.AddRow("lbm_r", "1.000", "1.062")
	tb.AddRow("cactusADM", "1.000", "1.081")
	tb.AddNote("normalised to WB")
	s := tb.String()
	for _, want := range []string{"Fig X", "workload", "lbm_r", "1.081", "note: normalised to WB"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, s)
		}
	}
	if len(tb.Rows()) != 2 {
		t.Fatalf("Rows = %d", len(tb.Rows()))
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("only")
	if got := tb.Rows()[0]; len(got) != 2 || got[1] != "" {
		t.Fatalf("short row not padded: %q", got)
	}
}

func TestSeconds(t *testing.T) {
	for _, tc := range []struct {
		ns   float64
		want string
	}{
		{4.4e8, "440.00 ms"},
		{2e9, "2.00 s"},
		{5e5, "500.0 us"},
		{3e11, "300 s"},
	} {
		if got := Seconds(tc.ns); got != tc.want {
			t.Errorf("Seconds(%v) = %q, want %q", tc.ns, got, tc.want)
		}
	}
}

func TestBytes(t *testing.T) {
	for _, tc := range []struct {
		b    uint64
		want string
	}{
		{512, "512 B"},
		{16 << 10, "16.0 KiB"},
		{256 << 20, "256.0 MiB"},
		{2 << 30, "2.0 GiB"},
	} {
		if got := Bytes(tc.b); got != tc.want {
			t.Errorf("Bytes(%d) = %q, want %q", tc.b, got, tc.want)
		}
	}
}

func TestTableJSON(t *testing.T) {
	tb := NewTable("Fig X", "a", "b")
	tb.AddRow("r1", "1.0")
	tb.AddNote("n")
	data, err := tb.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Title   string     `json:"title"`
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
		Notes   []string   `json:"notes"`
	}
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Title != "Fig X" || len(got.Headers) != 2 || len(got.Rows) != 1 || len(got.Notes) != 1 {
		t.Fatalf("round trip: %+v", got)
	}
}
