package stats

import (
	"fmt"
	"math/bits"
	"strings"
)

// Hist is a power-of-two latency histogram: bucket i counts samples in
// [2^i, 2^(i+1)). It gives tail-latency visibility (p50/p95/p99) without
// storing samples; the zero value is ready to use.
type Hist struct {
	buckets [48]uint64
	count   uint64
	sum     uint64
	max     uint64
}

// Add records one sample.
func (h *Hist) Add(v uint64) {
	i := bits.Len64(v)
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples.
func (h *Hist) Count() uint64 { return h.count }

// Mean returns the arithmetic mean of the samples.
func (h *Hist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Max returns the largest sample.
func (h *Hist) Max() uint64 { return h.max }

// Percentile returns an upper bound of the p-quantile (0 < p <= 1): the
// top of the bucket containing it.
func (h *Hist) Percentile(p float64) uint64 {
	if h.count == 0 {
		return 0
	}
	target := uint64(p * float64(h.count))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen >= target {
			if i == 0 {
				return 0
			}
			return 1<<uint(i) - 1
		}
	}
	return h.max
}

// String renders a compact sparkline-style summary.
func (h *Hist) String() string {
	if h.count == 0 {
		return "hist: empty"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.0f p50<=%d p95<=%d p99<=%d max=%d",
		h.count, h.Mean(), h.Percentile(0.5), h.Percentile(0.95), h.Percentile(0.99), h.max)
	return b.String()
}

// Merge folds another histogram into h; the multi-controller system
// aggregates per-controller histograms this way.
func (h *Hist) Merge(o *Hist) {
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}
