package cme

import (
	"testing"
	"testing/quick"

	"steins/internal/crypt"
)

func newEngine() *Engine {
	return &Engine{Key: crypt.NewKey(1), OTP: crypt.FastPad{}, MAC: crypt.SipMAC{}}
}

func TestApplyRoundTrip(t *testing.T) {
	e := newEngine()
	f := func(data [64]byte, addr, ctr uint64) bool {
		addr &^= 63
		buf := data
		e.Apply(&buf, addr, ctr)
		e.Apply(&buf, addr, ctr)
		return buf == data
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCiphertextDiffersFromPlaintext(t *testing.T) {
	e := newEngine()
	var buf [64]byte
	e.Apply(&buf, 64, 1)
	if buf == ([64]byte{}) {
		t.Fatal("encryption left plaintext unchanged")
	}
}

func TestDictionaryAttackResistance(t *testing.T) {
	// §II-B: the same plaintext at different addresses or counters yields
	// different ciphertexts.
	e := newEngine()
	var a, b, c [64]byte
	e.Apply(&a, 0, 1)
	e.Apply(&b, 64, 1)
	e.Apply(&c, 0, 2)
	if a == b || a == c {
		t.Fatal("identical ciphertexts across address/counter variation")
	}
}

func TestTagVerifyGC(t *testing.T) {
	e := newEngine()
	ct := [64]byte{1, 2, 3}
	tag := e.TagGC(&ct, 128, 77)
	if !e.Verify(&ct, 128, 77, tag) {
		t.Fatal("valid tag rejected")
	}
	if e.Verify(&ct, 128, 78, tag) {
		t.Fatal("wrong counter accepted")
	}
	if e.Verify(&ct, 192, 77, tag) {
		t.Fatal("wrong address accepted")
	}
	ct[5] ^= 1
	if e.Verify(&ct, 128, 77, tag) {
		t.Fatal("tampered ciphertext accepted")
	}
}

func TestVerifyUnwrittenRejected(t *testing.T) {
	e := newEngine()
	var ct [64]byte
	if e.Verify(&ct, 0, 0, Tag{}) {
		t.Fatal("unwritten tag verified")
	}
}

func TestRecoverCounterGC(t *testing.T) {
	e := newEngine()
	ct := [64]byte{9}
	for _, tc := range []struct{ stale, actual uint64 }{
		{0, 0}, {0, 5}, {100, 100}, {100, 165}, {65530, 65540}, // hint wraps 16-bit boundary
		{1 << 20, 1<<20 + GCHintMask},
	} {
		tag := e.TagGC(&ct, 64, tc.actual)
		got, macOps, ok := e.RecoverCounterGC(&ct, 64, tag, tc.stale)
		if !ok || got != tc.actual {
			t.Errorf("stale=%d actual=%d: got %d ok=%v", tc.stale, tc.actual, got, ok)
		}
		if macOps != 1 {
			t.Errorf("macOps = %d, want 1", macOps)
		}
	}
}

func TestRecoverCounterGCUnwritten(t *testing.T) {
	e := newEngine()
	var ct [64]byte
	got, _, ok := e.RecoverCounterGC(&ct, 64, Tag{}, 42)
	if !ok || got != 42 {
		t.Fatalf("unwritten block recovery = %d ok=%v, want stale 42", got, ok)
	}
}

func TestRecoverCounterGCDetectsTamper(t *testing.T) {
	e := newEngine()
	ct := [64]byte{9}
	tag := e.TagGC(&ct, 64, 50)
	ct[0] ^= 1 // attacker flips a ciphertext bit
	if _, _, ok := e.RecoverCounterGC(&ct, 64, tag, 40); ok {
		t.Fatal("tampered block recovered successfully")
	}
}

func TestRecoverCounterGCReplayYieldsOldCounter(t *testing.T) {
	// A replayed (data, tag) pair recovers, but to the OLD counter; the
	// level-0 increment check catches the shortfall (§III-H).
	e := newEngine()
	old := [64]byte{1}
	oldTag := e.TagGC(&old, 64, 10)
	got, _, ok := e.RecoverCounterGC(&old, 64, oldTag, 8)
	if !ok || got != 10 {
		t.Fatalf("replay recovery = %d ok=%v, want old counter 10", got, ok)
	}
}

func TestRecoverCounterSC(t *testing.T) {
	e := newEngine()
	ct := [64]byte{3}
	for _, tc := range []struct {
		major uint64
		minor uint8
	}{{0, 0}, {0, 63}, {7, 13}, {1 << 30, 1}} {
		enc := tc.major<<6 | uint64(tc.minor)
		tag := e.TagSC(&ct, 128, enc, tc.major)
		major, minor, macOps, ok := e.RecoverCounterSC(&ct, 128, tag, 0)
		if !ok || major != tc.major || minor != tc.minor {
			t.Errorf("(%d,%d): got (%d,%d) ok=%v", tc.major, tc.minor, major, minor, ok)
		}
		if macOps == 0 || macOps > 64 {
			t.Errorf("macOps = %d", macOps)
		}
	}
}

func TestRecoverCounterSCDetectsTamper(t *testing.T) {
	e := newEngine()
	ct := [64]byte{3}
	tag := e.TagSC(&ct, 128, 5<<6|9, 5)
	ct[1] ^= 0x80
	if _, _, _, ok := e.RecoverCounterSC(&ct, 128, tag, 0); !ok {
		return
	}
	t.Fatal("tampered SC block recovered successfully")
}

func TestRecoverCounterSCUnwritten(t *testing.T) {
	e := newEngine()
	var ct [64]byte
	major, minor, _, ok := e.RecoverCounterSC(&ct, 0, Tag{}, 7)
	if !ok || major != 0 || minor != 7 {
		t.Fatalf("unwritten SC recovery = (%d,%d) ok=%v", major, minor, ok)
	}
}

func TestGCRecoveryPropertyRandomCounters(t *testing.T) {
	e := newEngine()
	f := func(data [64]byte, stale uint64, delta uint16) bool {
		stale &= 1<<50 - 1
		actual := stale + uint64(delta)%GCHintMask // within hint window
		ct := data
		e.Apply(&ct, 64, actual)
		tag := e.TagGC(&ct, 64, actual)
		got, _, ok := e.RecoverCounterGC(&ct, 64, tag, stale)
		return ok && got == actual
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkApply(b *testing.B) {
	e := newEngine()
	var buf [64]byte
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		e.Apply(&buf, 64, uint64(i))
	}
}

func BenchmarkRecoverCounterSC(b *testing.B) {
	e := newEngine()
	ct := [64]byte{3}
	tag := e.TagSC(&ct, 128, 5<<6|63, 5) // worst case: minor 63
	for i := 0; i < b.N; i++ {
		e.RecoverCounterSC(&ct, 128, tag, 0)
	}
}
