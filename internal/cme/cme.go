// Package cme implements counter-mode encryption for user data (§II-B):
// one-time pads derived from (key, address, counter), XOR encryption, and
// the per-data-block authentication tag.
//
// The tag models the HMAC stored alongside each data block in the ECC bits
// of the DIMM (Synergy-style, so it costs no extra NVM access). Following
// §II-D, in split-counter mode the tag also embeds a copy of the block's
// encryption counter (the paper stores the major; carrying the minor bits
// too lets degraded recovery pin a media-destroyed block's exact counter);
// for general-counter leaves it embeds the low bits of the encryption
// counter as the analogous recovery hint, which bounds the Osiris-style
// counter search during leaf recovery to a single candidate.
package cme

import (
	"steins/internal/crypt"
	"steins/internal/sit"
)

// Tag is the per-data-block authentication metadata co-located with the
// line (ECC bits): a truncated HMAC plus the counter recovery hint.
type Tag struct {
	MAC     uint64 // truncated HMAC over (ciphertext, address, counter)
	Hint    uint64 // SC: full encryption counter; GC: low 16 bits of the counter
	Written bool   // whether the block has ever been written
}

// Engine performs data encryption and tagging with a fixed key.
// Its methods reuse internal scratch buffers (stack buffers passed into
// the OTP/MAC interfaces would escape to the heap on every call), so an
// Engine must not be shared across goroutines — each controller owns one.
type Engine struct {
	Key crypt.Key
	OTP crypt.OTPGen
	MAC crypt.MAC

	// BatchWindow bounds the deferred-tag queue: QueueTagGC/QueueTagSC
	// collect up to this many data-block tags before computing their MACs
	// in one crypt.Sum64Batch call. <= 1 computes tags synchronously
	// (batching off). Write-path data tags are pure metadata stores — no
	// read consults them until the block is read back — so deferring the
	// host-side computation is invisible as long as the owner flushes
	// before any tag is observed (see Controller guarded reads).
	BatchWindow int

	pad [64]byte // scratch: one-time pad
	msg [80]byte // scratch: MAC message

	// Deferred-tag queue. qMsgs holds packed 80-byte DataMAC messages
	// back-to-back; qDst the tag slots to fill at flush (stable pointers:
	// arena slots never move), qHint the recovery hints, qAddr the data
	// addresses for pending-lookup.
	qMsgs []byte
	qDst  []*Tag
	qHint []uint64
	qAddr []uint64
	qOut  []uint64
}

// Apply XORs the one-time pad for (addr, encCounter) into buf; the same
// operation encrypts and decrypts.
func (e *Engine) Apply(buf *[64]byte, addr, encCounter uint64) {
	e.OTP.Pad(&e.pad, e.Key, addr, encCounter)
	crypt.XOR64(buf, &e.pad)
}

// GCHintMask selects the counter bits stored in a general-counter tag hint.
const GCHintMask = 0xffff

// TagGC builds the tag for a ciphertext written under a general 56-bit
// leaf counter.
func (e *Engine) TagGC(ct *[64]byte, addr, encCounter uint64) Tag {
	return Tag{
		MAC:     sit.DataMACInto(&e.msg, e.MAC, e.Key, addr, ct, encCounter),
		Hint:    encCounter & GCHintMask,
		Written: true,
	}
}

// TagSC builds the tag for a ciphertext written under a split leaf. §II-D
// stores the leaf's major counter in the data block's HMAC field for
// recovery; the hint here carries the full encryption counter (major and
// minor — the minor rides in the same reserved ECC bits the general-counter
// hint uses), so a block whose ciphertext the media destroyed still pins
// its exact counter. Consumers recover the major as Hint >> minor-width.
func (e *Engine) TagSC(ct *[64]byte, addr, encCounter, major uint64) Tag {
	_ = major // layout knowledge stays with the caller; the hint is the full counter
	return Tag{
		MAC:     sit.DataMACInto(&e.msg, e.MAC, e.Key, addr, ct, encCounter),
		Hint:    encCounter,
		Written: true,
	}
}

// QueueTagGC records a general-counter tag for dst, deferring the MAC to
// the next flush when batching is on; otherwise it stores the tag
// immediately. The queue self-flushes when it reaches BatchWindow.
func (e *Engine) QueueTagGC(dst *Tag, ct *[64]byte, addr, encCounter uint64) {
	if e.BatchWindow <= 1 {
		*dst = e.TagGC(ct, addr, encCounter)
		return
	}
	e.queueTag(dst, ct, addr, encCounter, encCounter&GCHintMask)
}

// QueueTagSC is QueueTagGC for split-counter tags; the full encryption
// counter is stored as the recovery hint (see TagSC).
func (e *Engine) QueueTagSC(dst *Tag, ct *[64]byte, addr, encCounter, major uint64) {
	if e.BatchWindow <= 1 {
		*dst = e.TagSC(ct, addr, encCounter, major)
		return
	}
	e.queueTag(dst, ct, addr, encCounter, encCounter)
}

func (e *Engine) queueTag(dst *Tag, ct *[64]byte, addr, encCounter, hint uint64) {
	e.qMsgs = sit.AppendDataMACMsg(e.qMsgs, addr, ct, encCounter)
	e.qDst = append(e.qDst, dst)
	e.qHint = append(e.qHint, hint)
	e.qAddr = append(e.qAddr, addr)
	if len(e.qDst) >= e.BatchWindow {
		e.FlushTags()
	}
}

// PendingTags reports how many deferred tags await a flush.
func (e *Engine) PendingTags() int { return len(e.qDst) }

// PendingTagFor reports whether a deferred tag for addr is queued. Owners
// must flush before reading the tag of such an address.
func (e *Engine) PendingTagFor(addr uint64) bool {
	for _, a := range e.qAddr {
		if a == addr {
			return true
		}
	}
	return false
}

// FlushTags computes every queued tag MAC in one batch and fills the
// destination slots in queue order (a block written twice in one window
// ends with its latest tag, as queue order is write order).
func (e *Engine) FlushTags() {
	n := len(e.qDst)
	if n == 0 {
		return
	}
	if cap(e.qOut) < n {
		e.qOut = make([]uint64, n)
	}
	out := e.qOut[:n]
	crypt.Sum64Batch(e.MAC, e.Key, e.qMsgs, sit.DataMACMsgSize, out)
	for i, dst := range e.qDst {
		*dst = Tag{MAC: out[i], Hint: e.qHint[i], Written: true}
	}
	e.qMsgs = e.qMsgs[:0]
	e.qDst = e.qDst[:0]
	e.qHint = e.qHint[:0]
	e.qAddr = e.qAddr[:0]
}

// DropPendingTags discards the deferred-tag queue without computing the
// MACs; restore paths use it when the destination slots are about to be
// overwritten wholesale.
func (e *Engine) DropPendingTags() {
	e.qMsgs = e.qMsgs[:0]
	e.qDst = e.qDst[:0]
	e.qHint = e.qHint[:0]
	e.qAddr = e.qAddr[:0]
}

// Verify checks a ciphertext against its tag under the given counter.
func (e *Engine) Verify(ct *[64]byte, addr, encCounter uint64, tag Tag) bool {
	return tag.Written && sit.DataMACInto(&e.msg, e.MAC, e.Key, addr, ct, encCounter) == tag.MAC
}

// CandidateGC returns the unique counter >= stale whose low bits equal the
// general-counter tag hint. The controller's write-through guard keeps the
// unflushed advance below the hint modulus, so when the stale base is an
// authentic current image this candidate IS the block's true counter —
// pure arithmetic, usable even when the ciphertext itself is destroyed.
func CandidateGC(stale, hint uint64) uint64 {
	cand := stale&^uint64(GCHintMask) | hint
	if cand < stale {
		cand += GCHintMask + 1
	}
	return cand
}

// RecoverCounterGC restores the encryption counter of a persisted data
// block whose leaf counter was lost: the unique candidate >= stale whose
// low bits equal the tag hint is checked against the MAC. macOps reports
// MAC evaluations for recovery-cost accounting.
func (e *Engine) RecoverCounterGC(ct *[64]byte, addr uint64, tag Tag, stale uint64) (ctr uint64, macOps uint64, ok bool) {
	if !tag.Written {
		return stale, 0, true // never written since initialisation
	}
	cand := CandidateGC(stale, tag.Hint)
	if sit.DataMAC(e.MAC, e.Key, addr, ct, cand) == tag.MAC {
		return cand, 1, true
	}
	return 0, 1, false
}

// SearchCounterGC restores a general-counter block with NO trusted stale
// base (the leaf image was torn, bit-flipped or replayed): every counter
// congruent to the tag hint is tried from the smallest upward, capped at
// steps candidates. A hit is exact — the MAC binds (ciphertext, address,
// counter) — so an intact data block survives the loss of its leaf image.
func (e *Engine) SearchCounterGC(ct *[64]byte, addr uint64, tag Tag, steps int) (ctr uint64, macOps uint64, ok bool) {
	if !tag.Written {
		return 0, 0, true
	}
	cand := tag.Hint
	for j := 0; j < steps; j++ {
		macOps++
		if sit.DataMAC(e.MAC, e.Key, addr, ct, cand) == tag.MAC {
			return cand, macOps, true
		}
		cand += GCHintMask + 1
	}
	return 0, macOps, false
}

// RecoverCounterSC restores the (major, minor) encryption counter of a
// block covered by a split leaf: the major comes from the high bits of the
// tag hint, the minor from an Osiris-style search over its 64 possible
// values (the search is the §IV-D recovery cost the paper models; the
// hint's own minor bits only matter when the ciphertext is unverifiable).
func (e *Engine) RecoverCounterSC(ct *[64]byte, addr uint64, tag Tag, staleMinor uint8) (major uint64, minor uint8, macOps uint64, ok bool) {
	if !tag.Written {
		return 0, staleMinor, 0, true
	}
	major = tag.Hint >> 6
	for m := 0; m < 64; m++ {
		macOps++
		enc := major<<6 | uint64(m)
		if sit.DataMAC(e.MAC, e.Key, addr, ct, enc) == tag.MAC {
			return major, uint8(m), macOps, true
		}
	}
	return 0, 0, macOps, false
}
