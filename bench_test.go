package steins

// The benchmarks below regenerate each table and figure of the paper's
// evaluation (§IV) at reduced scale — one reported metric per series the
// figure plots — plus the ablation benches DESIGN.md calls out. Run
//
//	go test -bench=. -benchmem
//
// for the quick pass, or `go run ./cmd/benchfigs -scale full` for
// paper-scale tables.

import (
	"bytes"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"steins/internal/bmt"
	"steins/internal/bmtctrl"
	"steins/internal/counter"
	"steins/internal/crypt"
	"steins/internal/figures"
	"steins/internal/memctrl"
	"steins/internal/metrics"
	"steins/internal/rng"
	"steins/internal/scheme/steins"
	"steins/internal/scheme/wb"
	"steins/internal/server"
	"steins/internal/sim"
	"steins/internal/snapshot"
	"steins/internal/trace"
	"steins/securemem"
)

// rngNew keeps the bench file decoupled from the rng package's name.
func rngNew(seed uint64) *rng.Source { return rng.New(seed) }

// benchScale keeps each figure bench in the seconds range.
func benchScale() figures.Scale {
	return figures.Scale{Ops: 6000, Seed: 1, Fig17Caches: []int{16 << 10, 32 << 10}}
}

// reportGeomeans extracts the geomean row of a figure table into bench
// metrics named after the schemes. A malformed table — no rows, or a
// geomean row narrower than the scheme headers — fails the benchmark
// instead of panicking with an index error.
func reportGeomeans(b *testing.B, t interface {
	Rows() [][]string
}, headers []string) {
	b.Helper()
	rows := t.Rows()
	if len(rows) == 0 {
		b.Fatalf("figure table has no rows (want a geomean row)")
	}
	avg := rows[len(rows)-1]
	if len(avg) < len(headers) {
		b.Fatalf("geomean row has %d cells, want %d (%v)", len(avg), len(headers), avg)
	}
	for i := 1; i < len(headers); i++ {
		v, err := strconv.ParseFloat(avg[i], 64)
		if err != nil {
			b.Fatalf("geomean cell %q: %v", avg[i], err)
		}
		b.ReportMetric(v, headers[i]+"_x")
	}
}

func gcHeaders() []string { return []string{"workload", "WB-GC", "ASIT", "STAR", "Steins-GC"} }
func scHeaders() []string { return []string{"workload", "WB-SC", "Steins-GC", "Steins-SC"} }

// The comparison sweeps are deterministic for a fixed scale, so the figure
// benchmarks share one sweep per family, built once outside any timed
// region: a Fig benchmark then measures table construction alone, and
// BenchmarkGCSweepBuild/BenchmarkSCSweepBuild measure the simulations.
var (
	gcSweepOnce, scSweepOnce sync.Once
	gcSweepVal, scSweepVal   *figures.Sweep
	gcSweepErr, scSweepErr   error
)

func gcSweep(b *testing.B) *figures.Sweep {
	b.Helper()
	gcSweepOnce.Do(func() { gcSweepVal, gcSweepErr = figures.GCSweep(benchScale()) })
	if gcSweepErr != nil {
		b.Fatal(gcSweepErr)
	}
	return gcSweepVal
}

func scSweep(b *testing.B) *figures.Sweep {
	b.Helper()
	scSweepOnce.Do(func() { scSweepVal, scSweepErr = figures.SCSweep(benchScale()) })
	if scSweepErr != nil {
		b.Fatal(scSweepErr)
	}
	return scSweepVal
}

func benchGCFigure(b *testing.B, fig func(*figures.Sweep) interface{ Rows() [][]string }) {
	sw := gcSweep(b)
	b.ResetTimer()
	var t interface{ Rows() [][]string }
	for i := 0; i < b.N; i++ {
		t = fig(sw)
	}
	b.StopTimer()
	reportGeomeans(b, t, gcHeaders())
}

func benchSCFigure(b *testing.B, fig func(*figures.Sweep) interface{ Rows() [][]string }) {
	sw := scSweep(b)
	b.ResetTimer()
	var t interface{ Rows() [][]string }
	for i := 0; i < b.N; i++ {
		t = fig(sw)
	}
	b.StopTimer()
	reportGeomeans(b, t, scHeaders())
}

// BenchmarkGCSweepBuild times the GC comparison sweep itself — the
// simulations the Fig09/10/11/13/15 benchmarks used to (mis)charge to
// table rendering.
func BenchmarkGCSweepBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := figures.GCSweep(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSCSweepBuild times the SC comparison sweep (Fig12/14/16's
// input).
func BenchmarkSCSweepBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := figures.SCSweep(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig09ExecTimeGC(b *testing.B) {
	benchGCFigure(b, func(sw *figures.Sweep) interface{ Rows() [][]string } { return figures.Fig9(sw) })
}

func BenchmarkFig10WriteLatencyGC(b *testing.B) {
	benchGCFigure(b, func(sw *figures.Sweep) interface{ Rows() [][]string } { return figures.Fig10(sw) })
}

func BenchmarkFig11ReadLatencyGC(b *testing.B) {
	benchGCFigure(b, func(sw *figures.Sweep) interface{ Rows() [][]string } { return figures.Fig11(sw) })
}

func BenchmarkFig12ExecTimeSC(b *testing.B) {
	benchSCFigure(b, func(sw *figures.Sweep) interface{ Rows() [][]string } { return figures.Fig12(sw) })
}

func BenchmarkFig13WriteTrafficGC(b *testing.B) {
	benchGCFigure(b, func(sw *figures.Sweep) interface{ Rows() [][]string } { return figures.Fig13(sw) })
}

func BenchmarkFig14WriteTrafficSC(b *testing.B) {
	benchSCFigure(b, func(sw *figures.Sweep) interface{ Rows() [][]string } { return figures.Fig14(sw) })
}

func BenchmarkFig15EnergyGC(b *testing.B) {
	benchGCFigure(b, func(sw *figures.Sweep) interface{ Rows() [][]string } { return figures.Fig15(sw) })
}

func BenchmarkFig16EnergySC(b *testing.B) {
	benchSCFigure(b, func(sw *figures.Sweep) interface{ Rows() [][]string } { return figures.Fig16(sw) })
}

func BenchmarkFig17RecoveryTime(b *testing.B) {
	schemes := []sim.Scheme{sim.ASIT, sim.STAR, sim.SteinsGC, sim.SteinsSC}
	const cacheBytes = 32 << 10
	for i := 0; i < b.N; i++ {
		for _, s := range schemes {
			rep, err := sim.RecoveryAtCacheSize(s, cacheBytes, 1)
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				b.ReportMetric(rep.TimeNS/1e6, s.Name+"_ms")
			}
		}
	}
}

func BenchmarkStorageOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if figures.StorageTable() == nil {
			b.Fatal("no table")
		}
	}
}

func BenchmarkTableIConfig(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if figures.TableI() == nil {
			b.Fatal("no table")
		}
	}
}

func BenchmarkOverflowAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if figures.OverflowTable() == nil {
			b.Fatal("no table")
		}
	}
}

// --- ablation benches (DESIGN.md) -------------------------------------------

// ablationRun drives one workload/scheme pair and returns exec cycles.
func ablationRun(b *testing.B, factory memctrl.PolicyFactory, split bool,
	configure func(*memctrl.Config)) (uint64, uint64) {
	b.Helper()
	prof := trace.Profile{
		Name: "ablation", FootprintBytes: 32 << 20, WriteFrac: 0.5,
		GapMean: 300, Pattern: trace.Uniform,
	}
	opt := sim.Options{Ops: 8000, Seed: 1, MetaCacheBytes: 32 << 10, Configure: configure}
	r, err := sim.Run(prof, sim.Scheme{Name: "ablation", Factory: factory, Split: split}, opt)
	if err != nil {
		b.Fatal(err)
	}
	return r.ExecCycles, r.WriteBytes
}

// BenchmarkAblationNVBuffer contrasts Steins with and without the
// non-volatile parent-counter buffer (§III-E): without it, parent fetches
// return to the write critical path.
func BenchmarkAblationNVBuffer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		with, _ := ablationRun(b, steins.Factory, false, nil)
		without, _ := ablationRun(b, steins.FactoryWithOptions(steins.Options{DisableNVBuffer: true}), false, nil)
		if i == b.N-1 {
			b.ReportMetric(float64(without)/float64(with), "nobuffer_over_buffer_x")
		}
	}
}

// BenchmarkAblationLazyEager contrasts the lazy and eager SIT update
// schemes of §II-C on the WB baseline.
func BenchmarkAblationLazyEager(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lazy, _ := ablationRun(b, wb.Factory, false, nil)
		eager, _ := ablationRun(b, wb.Factory, false, func(c *memctrl.Config) { c.EagerUpdate = true })
		if i == b.N-1 {
			b.ReportMetric(float64(eager)/float64(lazy), "eager_over_lazy_x")
		}
	}
}

// BenchmarkAblationRecordCache sweeps the number of record lines cached in
// the controller (Table I: 16).
func BenchmarkAblationRecordCache(b *testing.B) {
	for _, lines := range []int{4, 16, 64} {
		b.Run(strconv.Itoa(lines), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, traffic := ablationRun(b, steins.Factory, false, func(c *memctrl.Config) {
					c.RecordCacheLines = lines
				})
				if i == b.N-1 {
					b.ReportMetric(float64(traffic)/(1<<20), "write_MiB")
				}
			}
		})
	}
}

// BenchmarkAblationMetaCache sweeps the metadata cache size (§IV: larger
// caches deliver higher performance).
func BenchmarkAblationMetaCache(b *testing.B) {
	for _, kb := range []int{16, 64, 256} {
		b.Run(strconv.Itoa(kb)+"KiB", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				exec, _ := ablationRun(b, steins.Factory, false, func(c *memctrl.Config) {
					c.MetaCacheBytes = kb << 10
				})
				if i == b.N-1 {
					b.ReportMetric(float64(exec)/1e6, "exec_Mcycles")
				}
			}
		})
	}
}

// BenchmarkAblationSkipUpdate compares parent-counter headroom consumption
// of the skip-update and naive split-counter schemes (§III-B1): the same
// hot-spot write sequence advances the naive parent orders of magnitude
// faster, which is why the paper rejects that weighting.
func BenchmarkAblationSkipUpdate(b *testing.B) {
	const writes = 1 << 14
	var skipParent, naiveParent float64
	for i := 0; i < b.N; i++ {
		var skip, naive counter.Split
		for w := 0; w < writes; w++ {
			skip.Increment(0) // hot single block: worst case for overflows
			naive.IncrementNaive(0)
		}
		skipParent, naiveParent = float64(skip.Parent()), float64(naive.ParentNaive())
	}
	b.ReportMetric(skipParent, "skip_parent")
	b.ReportMetric(naiveParent, "naive_parent")
	b.ReportMetric(naiveParent/skipParent, "naive_over_skip_x")
}

// BenchmarkAblationSITvsBMT contrasts the update cost of a BMT branch
// (sequential hashes to the root, §II-C) with the SIT lazy update (one
// node plus its parent).
func BenchmarkAblationSITvsBMT(b *testing.B) {
	tree := bmt.New(1<<15, crypt.NewKey(1), crypt.SipMAC{}, 40)
	var blk counter.Block
	var bmtCycles uint64
	for i := 0; i < b.N; i++ {
		blk[0] = byte(i)
		bmtCycles += tree.Update(uint64(i)&(1<<15-1), blk)
	}
	const sitLazyCycles = 2 * 40 // leaf HMAC + parent update on flush
	b.ReportMetric(float64(bmtCycles)/float64(b.N), "bmt_cycles_per_update")
	b.ReportMetric(sitLazyCycles, "sit_lazy_cycles_per_flush")
}

// --- hot-path benches (arena metadata + batched-MAC window) ------------------

// hotController builds a small controller warmed by writing every covered
// line once, so the metadata arenas, cache sets and the MAC batch queue
// are all at steady-state capacity before measurement starts.
func hotController(b *testing.B, window int) *memctrl.Controller {
	b.Helper()
	const dataBytes = 1 << 20
	cfg := memctrl.DefaultConfig(dataBytes, true)
	cfg.MACBatchWindow = window
	c := memctrl.New(cfg, steins.Factory)
	for addr := uint64(0); addr < dataBytes; addr += 64 {
		if err := c.WriteData(5, addr, [64]byte{byte(addr >> 6)}); err != nil {
			b.Fatal(err)
		}
	}
	return c
}

// BenchmarkHotWritePath measures a steady-state dirty-eviction write on a
// warm controller and enforces the arena-era allocation ceiling: the
// retire path must not allocate per operation (tags, wear, and lines are
// flat arrays; the MAC queue reuses its buffers).
func BenchmarkHotWritePath(b *testing.B) {
	c := hotController(b, 16)
	var payload [64]byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payload[0] = byte(i)
		addr := uint64(i) % (1 << 14) * 64
		if err := c.WriteData(5, addr, payload); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	i := 0
	if allocs := testing.AllocsPerRun(100, func() {
		payload[0] = byte(i)
		addr := uint64(i) % (1 << 14) * 64
		i++
		if err := c.WriteData(5, addr, payload); err != nil {
			b.Fatal(err)
		}
	}); allocs > 1 {
		b.Fatalf("warm write path allocates %.2f times per op, ceiling 1", allocs)
	}
}

// BenchmarkHotReadPath measures a steady-state verified read and enforces
// its allocation ceiling: probe-only arena lookups and the flushed tag
// window mean a warm read must not allocate.
func BenchmarkHotReadPath(b *testing.B) {
	c := hotController(b, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint64(i) % (1 << 14) * 64
		if _, err := c.ReadData(5, addr); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	i := 0
	if allocs := testing.AllocsPerRun(100, func() {
		addr := uint64(i) % (1 << 14) * 64
		i++
		if _, err := c.ReadData(5, addr); err != nil {
			b.Fatal(err)
		}
	}); allocs > 1 {
		b.Fatalf("warm read path allocates %.2f times per op, ceiling 1", allocs)
	}
}

// BenchmarkMACBatchWindow contrasts the deferred-MAC window sizes on the
// same write stream: window 1 computes every data-tag MAC synchronously,
// window 16 batches them through the engine's packed message queue.
// Results are bit-identical across windows (pinned by the conformance
// suite); only host time differs.
func BenchmarkMACBatchWindow(b *testing.B) {
	for _, w := range []int{1, 16} {
		b.Run("window"+strconv.Itoa(w), func(b *testing.B) {
			c := hotController(b, w)
			var payload [64]byte
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				payload[0] = byte(i)
				addr := uint64(i) % (1 << 14) * 64
				if err := c.WriteData(5, addr, payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- sharded engine benches --------------------------------------------------

// shardedBenchProfile is sized so the per-channel working set still
// misses the metadata cache: the interesting regime for interleaving.
func shardedBenchProfile() trace.Profile {
	return trace.Profile{
		Name: "sharded-bench", FootprintBytes: 4 << 20, WriteFrac: 0.5,
		GapMean: 10, Pattern: trace.Uniform,
	}
}

// BenchmarkRunUnsharded is the single-controller baseline for the
// BenchmarkRunSharded series; compare ops_per_sec across the two.
func BenchmarkRunUnsharded(b *testing.B) {
	prof := shardedBenchProfile()
	opt := sim.Options{Ops: 20000, Seed: 3, MetaCacheBytes: 64 << 10}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := sim.Run(prof, sim.SteinsSC, opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(r.Ops)*float64(b.N)/b.Elapsed().Seconds(), "ops_per_sec")
		}
	}
}

// BenchmarkRunSchemes tracks the relaxed-persistence scheme family on the
// same trace and options as BenchmarkRunUnsharded, so their host-time cost
// relative to the Steins baseline is part of the persisted trajectory.
func BenchmarkRunSchemes(b *testing.B) {
	prof := shardedBenchProfile()
	opt := sim.Options{Ops: 20000, Seed: 3, MetaCacheBytes: 64 << 10}
	for _, s := range []sim.Scheme{sim.PipeSITGC, sim.PipeSITSC, sim.TriadGC, sim.TriadSC} {
		b.Run(s.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r, err := sim.Run(prof, s, opt)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(float64(r.Ops)*float64(b.N)/b.Elapsed().Seconds(), "ops_per_sec")
				}
			}
		})
	}
}

// BenchmarkRunSharded drives the same trace through the channel-interleaved
// engine at 1, 2 and 4 channels. On a multi-core host the 4-channel run
// should beat BenchmarkRunUnsharded on wall clock; on one core it measures
// the splitter + merge overhead instead.
func BenchmarkRunSharded(b *testing.B) {
	prof := shardedBenchProfile()
	opt := sim.Options{Ops: 20000, Seed: 3, MetaCacheBytes: 64 << 10}
	for _, ch := range []int{1, 2, 4} {
		b.Run(strconv.Itoa(ch)+"ch", func(b *testing.B) {
			so := sim.ShardOptions{Channels: ch, Interleave: trace.InterleaveLine}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r, err := sim.RunSharded(prof, sim.SteinsSC, opt, so)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(float64(r.Merged.Ops)*float64(b.N)/b.Elapsed().Seconds(), "ops_per_sec")
				}
			}
		})
	}
}

// BenchmarkSplitterEpoch measures the trace splitter alone and enforces
// the steady-state allocation ceiling: epoch batches are reused, so a warm
// splitter must not allocate per epoch.
func BenchmarkSplitterEpoch(b *testing.B) {
	prof := shardedBenchProfile()
	sp := trace.NewSplitter(nil, 4, trace.InterleaveLine)
	sp.LimitLocalBytes = trace.ShardBytes(2*prof.FootprintBytes, 4, trace.InterleaveLine)
	ops := make([]trace.Op, 4096)
	src := trace.New(prof, 11, len(ops))
	for i := range ops {
		op, _ := src.Next()
		ops[i] = op
	}
	rep := trace.NewReplay(prof.Name, ops)
	sp.Rebind(rep)
	if _, _, err := sp.NextEpoch(len(ops)); err != nil {
		b.Fatal(err) // warm the per-shard buffers
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep.Reset()
		if _, _, err := sp.NextEpoch(len(ops)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if allocs := testing.AllocsPerRun(20, func() {
		rep.Reset()
		if _, _, err := sp.NextEpoch(len(ops)); err != nil {
			b.Fatal(err)
		}
	}); allocs > 0 {
		b.Fatalf("warm splitter allocates %.1f times per epoch, want 0", allocs)
	}
}

// --- snapshot benches --------------------------------------------------------

// snapshotBenchProfile keeps the captured state realistic: the working set
// misses the metadata cache, so the dirty sets and device overlays are
// populated when the snapshot is taken.
func snapshotBenchProfile() trace.Profile {
	return trace.Profile{
		Name: "snapshot-bench", FootprintBytes: 1 << 20, WriteFrac: 0.5,
		GapMean: 10, Pattern: trace.Uniform,
	}
}

func init() {
	trace.Register(snapshotBenchProfile())
}

// snapshotBenchEngine drives a run to the middle and hands back everything
// a capture needs.
func snapshotBenchEngine(b *testing.B) (snapshot.RunHeader, *trace.Generator, *sim.Single) {
	b.Helper()
	h := snapshot.RunHeader{
		Workload: "snapshot-bench", Scheme: "Steins-SC",
		TotalOps: 4000, WarmupOps: 500, Seed: 21,
		MetaCacheBytes: 32 << 10, Channels: 1,
		HasMetrics: true, Metrics: metrics.Options{SampleEvery: 64, RingCap: 64},
	}
	prof, _ := trace.ByName(h.Workload)
	s, ok := sim.SchemeByName(h.Scheme)
	if !ok {
		b.Fatalf("unknown scheme %q", h.Scheme)
	}
	opt, _ := h.Options()
	g := trace.New(prof, opt.Seed, opt.WarmupOps+opt.Ops)
	e := sim.NewSingle(prof, s, opt)
	if _, err := e.DriveN(g, 2500); err != nil {
		b.Fatal(err)
	}
	return h, g, e
}

// BenchmarkSnapshotSave measures the warm save path (capture + serialize)
// and enforces its allocation ceiling: the per-save allocation count must
// not grow past the budget even as state capture touches every layer.
func BenchmarkSnapshotSave(b *testing.B) {
	h, g, e := snapshotBenchEngine(b)
	save := func(buf *bytes.Buffer) int {
		buf.Reset()
		st, err := snapshot.CaptureSingle(h, g, e)
		if err != nil {
			b.Fatal(err)
		}
		if err := snapshot.Write(buf, st); err != nil {
			b.Fatal(err)
		}
		return buf.Len()
	}
	var buf bytes.Buffer
	size := save(&buf) // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		save(&buf)
	}
	b.StopTimer()
	b.ReportMetric(float64(size), "snapshot_bytes")
	// Ceiling with ~2x headroom over the measured warm path; a regression
	// that makes capture allocate per cache line or per device block blows
	// straight through it.
	allocs := testing.AllocsPerRun(10, func() { save(&buf) })
	b.ReportMetric(allocs, "allocs_per_save")
	if ceiling := 2_000.0; allocs > ceiling {
		b.Fatalf("warm save path allocates %.0f times, ceiling %.0f", allocs, ceiling)
	}
}

// BenchmarkSnapshotLoad measures the full load path: envelope decode,
// state rebuild, and engine restore into a fresh system.
func BenchmarkSnapshotLoad(b *testing.B) {
	h, g, e := snapshotBenchEngine(b)
	st, err := snapshot.CaptureSingle(h, g, e)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := snapshot.Write(&buf, st); err != nil {
		b.Fatal(err)
	}
	wire := buf.Bytes()
	b.ReportAllocs()
	b.SetBytes(int64(len(wire)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		back, err := snapshot.Read(bytes.NewReader(wire))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := back.Resume(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBMTSystem contrasts the full BMT-based controller with
// the SIT-based WB controller under identical traffic — the system-level
// version of the §II-C comparison (the per-update version is
// BenchmarkAblationSITvsBMT).
func BenchmarkAblationBMTSystem(b *testing.B) {
	run := func(bmtMode bool) float64 {
		r := rngNew(9)
		if bmtMode {
			cfg := bmtctrl.DefaultConfig(1 << 20)
			cfg.MetaCacheBytes = 8 << 10
			c := bmtctrl.New(cfg)
			for i := 0; i < 6000; i++ {
				addr := r.Uint64n(1<<20/64) * 64
				if err := c.WriteData(5, addr, [64]byte{byte(i)}); err != nil {
					b.Fatal(err)
				}
			}
			return c.Stats().AvgWriteLatency()
		}
		cfg := memctrl.DefaultConfig(1<<20, true)
		cfg.MetaCacheBytes = 8 << 10
		c := memctrl.New(cfg, wb.Factory)
		for i := 0; i < 6000; i++ {
			addr := r.Uint64n(1<<20/64) * 64
			if err := c.WriteData(5, addr, [64]byte{byte(i)}); err != nil {
				b.Fatal(err)
			}
		}
		return c.Stats().AvgWriteLatency()
	}
	for i := 0; i < b.N; i++ {
		bmtLat := run(true)
		sitLat := run(false)
		if i == b.N-1 {
			b.ReportMetric(bmtLat/sitLat, "bmt_over_sit_wlat_x")
		}
	}
}

// BenchmarkServePath measures the serving layer end to end — admission,
// write coalescing, placement-group routing and the engine epoch — with
// concurrent clients hammering one tenant (2 PGs × 2 channels, Steins-SC)
// through the same Pool.Do path the HTTP handlers use.
func BenchmarkServePath(b *testing.B) {
	const poolBytes = 256 << 10
	p, err := server.NewPool(server.Config{Tenants: []server.TenantConfig{{
		Name: "bench", Scheme: securemem.SteinsSC, PGs: 2, PoolBytes: poolBytes,
		Channels: 2, MaxInFlight: 512, MaxQueuedOps: 8192, BatchOps: 64,
	}}})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	var next atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		spec := make([]server.OpSpec, 1)
		for pb.Next() {
			i := next.Add(1)
			spec[0] = server.OpSpec{IsWrite: i%4 != 0, Addr: (i * 64) % poolBytes}
			spec[0].Data[0] = byte(i)
			for {
				ops, aerr := p.Do("bench", spec)
				if aerr == nil {
					if ops[0].Err != nil {
						b.Fatal(ops[0].Err)
					}
					break
				}
				if aerr.Status != 429 {
					b.Fatal(aerr)
				}
			}
		}
	})
	b.StopTimer()
	adm := p.Tenant("bench").Admission()
	if adm.Batches > 0 {
		b.ReportMetric(float64(adm.Accepted)/float64(adm.Batches), "ops_per_batch")
	}
}
