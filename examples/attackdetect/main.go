// Attackdetect: the threat model exercised end to end.
//
// Runs every attack scenario of the §II-A threat model — data/metadata
// tampering, replay of authentic stale state, and manipulation of the
// recovery-tracking structures — against each recoverable scheme and
// prints where each attack was caught.
//
//	go run ./examples/attackdetect
package main

import (
	"fmt"

	"steins/internal/attack"
	"steins/internal/sim"
	"steins/internal/stats"
)

func main() {
	schemes := []sim.Scheme{sim.ASIT, sim.STAR, sim.SteinsGC, sim.SteinsSC, sim.SCUEGC}

	headers := []string{"attack"}
	for _, s := range schemes {
		headers = append(headers, s.Name)
	}
	t := stats.NewTable("Integrity attack detection matrix", headers...)
	for _, sc := range attack.Scenarios() {
		row := []string{sc.String()}
		for _, s := range schemes {
			rep, err := attack.Execute(s.Factory, s.Split, sc)
			switch {
			case err != nil:
				row = append(row, "ERROR: "+err.Error())
			case rep.Detected:
				row = append(row, "detected@"+rep.Where)
			case rep.Neutralized:
				row = append(row, "neutralized")
			default:
				row = append(row, "MISSED")
			}
		}
		t.AddRow(row...)
	}
	t.AddNote("detected@recovery: integrity error raised while rebuilding the tree")
	t.AddNote("detected@runtime: HMAC verification failed on the next access")
	t.AddNote("neutralized: the scheme's restore overwrote the attack; all data verified intact")
	fmt.Print(t)
}
