// Persistkv: a persistent key-value store on secure NVM.
//
// A small fixed-capacity hash table lives entirely in the protected data
// region of a Steins-secured memory controller: every slot access goes
// through counter-mode encryption and integrity verification, and the
// store survives a power failure mid-burst thanks to metadata recovery.
//
//	go run ./examples/persistkv
package main

import (
	"encoding/binary"
	"fmt"

	"steins/internal/crypt"
	"steins/securemem"
)

// kvStore is an open-addressed hash table of 64-byte slots: 8-byte hash of
// the key, 24-byte key, 32-byte value.
type kvStore struct {
	m     *securemem.Memory
	slots uint64
}

func newKV(m *securemem.Memory, dataBytes uint64) *kvStore {
	return &kvStore{m: m, slots: dataBytes / 64}
}

func (kv *kvStore) slotAddr(i uint64) uint64 { return (i % kv.slots) * 64 }

func (kv *kvStore) hash(key string) uint64 {
	return crypt.SipMAC{}.Sum64(crypt.NewKey(42), []byte(key))
}

// Put inserts or updates a key (max 24 bytes) with a value (max 32 bytes).
func (kv *kvStore) Put(key, value string) error {
	if len(key) > 24 || len(value) > 32 {
		return fmt.Errorf("kv: key/value too large")
	}
	h := kv.hash(key)
	for probe := uint64(0); probe < kv.slots; probe++ {
		addr := kv.slotAddr(h + probe)
		slot, err := kv.m.Read(addr)
		if err != nil {
			return err
		}
		stored := binary.LittleEndian.Uint64(slot[:8])
		if stored != 0 && (stored != h || string(slot[8:8+len(key)]) != key) {
			continue // occupied by another key
		}
		var out [64]byte
		binary.LittleEndian.PutUint64(out[:8], h)
		copy(out[8:32], key)
		copy(out[32:], value)
		return kv.m.Write(addr, out)
	}
	return fmt.Errorf("kv: table full")
}

// Get fetches a key's value.
func (kv *kvStore) Get(key string) (string, bool, error) {
	h := kv.hash(key)
	for probe := uint64(0); probe < kv.slots; probe++ {
		addr := kv.slotAddr(h + probe)
		slot, err := kv.m.Read(addr)
		if err != nil {
			return "", false, err
		}
		stored := binary.LittleEndian.Uint64(slot[:8])
		if stored == 0 {
			return "", false, nil
		}
		if stored == h && string(slot[8:8+len(key)]) == key {
			val := slot[32:]
			n := 0
			for n < len(val) && val[n] != 0 {
				n++
			}
			return string(val[:n]), true, nil
		}
	}
	return "", false, nil
}

func main() {
	const dataBytes = 1 << 20
	m, err := securemem.New(securemem.Config{DataBytes: dataBytes, Scheme: securemem.SteinsSC})
	if err != nil {
		panic(err)
	}
	kv := newKV(m, dataBytes)

	// A burst of inserts; the final ones leave dirty metadata.
	for i := 0; i < 2000; i++ {
		if err := kv.Put(fmt.Sprintf("key-%04d", i), fmt.Sprintf("value-%04d", i)); err != nil {
			panic(err)
		}
	}
	if err := kv.Put("paper", "CLUSTER 2024 / Steins"); err != nil {
		panic(err)
	}
	fmt.Println("inserted 2001 records into the secure store")

	kv.m.Crash()
	fmt.Println("-- power failure --")
	rep, err := kv.m.Recover()
	if err != nil {
		panic(err)
	}
	fmt.Printf("metadata recovered: %d nodes, %.1f us simulated\n",
		rep.NodesRecovered, rep.SimulatedNS/1e3)

	for _, key := range []string{"key-0000", "key-1999", "paper"} {
		val, ok, err := kv.Get(key)
		if err != nil {
			panic(err)
		}
		fmt.Printf("get %q -> %q (found=%v)\n", key, val, ok)
	}
}
