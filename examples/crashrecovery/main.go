// Crashrecovery: recovery time across schemes and cache sizes.
//
// Reproduces the Fig. 17 methodology interactively: for each recoverable
// scheme and a range of metadata cache sizes, fill the cache with dirty
// nodes, crash, and measure the recovery work under the 100 ns-per-fetch
// model of §IV-D.
//
//	go run ./examples/crashrecovery
package main

import (
	"fmt"

	"steins/internal/memctrl"
	"steins/internal/multi"
	"steins/internal/rng"
	"steins/internal/scheme/steins"
	"steins/internal/sim"
	"steins/internal/stats"
)

func main() {
	caches := []int{16 << 10, 64 << 10, 256 << 10}
	schemes := []sim.Scheme{sim.ASIT, sim.STAR, sim.SteinsGC, sim.SteinsSC}

	t := stats.NewTable("Recovery time vs metadata cache size (all cached metadata dirty)",
		"cache", "ASIT", "STAR", "Steins-GC", "Steins-SC")
	for _, cacheBytes := range caches {
		row := []string{stats.Bytes(uint64(cacheBytes))}
		for _, s := range schemes {
			rep, err := sim.RecoveryAtCacheSize(s, cacheBytes, 1)
			if err != nil {
				panic(err)
			}
			row = append(row, fmt.Sprintf("%s (%d rd)", stats.Seconds(rep.TimeNS), rep.NVMReads))
		}
		t.AddRow(row...)
	}
	t.AddNote("ASIT reads one shadow slot per cache line; STAR and Steins-GC read ~9-11 lines per dirty node; Steins-SC reads 64 data blocks per leaf")
	t.AddNote("WB cannot recover at all; SCUE would read every leaf of the whole tree (hours at TB scale)")
	fmt.Print(t)

	multiDIMM()
}

// multiDIMM shows the §IV-F deployment: several controllers recover their
// DIMMs in parallel after a machine-wide power failure, so recovery time
// is the slowest DIMM, not the sum.
func multiDIMM() {
	cfg := memctrl.DefaultConfig(4<<20, false)
	cfg.MetaCacheBytes = 16 << 10
	sys := multi.New(4, cfg, steins.Factory, 4096)
	r := rng.New(3)
	lines := sys.DataBytes() / 64
	for i := 0; i < 20000; i++ {
		addr := r.Uint64n(lines) * 64
		var b [64]byte
		b[0] = byte(i)
		if err := sys.WriteData(5, addr, b); err != nil {
			panic(err)
		}
	}
	sys.Crash()
	rep, err := sys.Recover()
	if err != nil {
		panic(err)
	}
	fmt.Printf("\n4 DIMMs crashed together: %d nodes recovered with %d total reads,\n", rep.NodesRecovered, rep.NVMReads)
	fmt.Printf("parallel recovery time %s (vs %s if the DIMMs recovered serially)\n",
		stats.Seconds(rep.TimeNS), stats.Seconds(float64(rep.NVMReads)*100))
}
