// Quickstart: a minimal secure-NVM round trip with Steins.
//
// Builds a secure memory controller with the Steins recovery scheme,
// writes and reads encrypted+verified data, crashes the system with dirty
// security metadata, recovers it, and reads the data back.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"steins/securemem"
)

func main() {
	// 1 MiB protected data region with split-counter leaves; every other
	// parameter is the paper's Table I default.
	m, err := securemem.New(securemem.Config{
		DataBytes: 1 << 20,
		Scheme:    securemem.SteinsSC,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(m.Describe())

	// Write: the block is encrypted with counter-mode encryption, tagged
	// with an HMAC, and covered by the SGX-style integrity tree.
	var secret securemem.Block
	copy(secret[:], "attack at dawn")
	if err := m.Write(0x1000, secret); err != nil {
		panic(err)
	}
	fmt.Printf("wrote plaintext   %q\n", secret[:14])
	ct := m.Controller().Device().Peek(0x1000)
	fmt.Printf("NVM ciphertext    %x...\n", ct[:14])

	// Read: decrypted and verified against the tree.
	got, err := m.Read(0x1000)
	if err != nil {
		panic(err)
	}
	fmt.Printf("read back         %q\n", got[:14])

	// Crash with the covering leaf counter still dirty in the metadata
	// cache — without a recovery scheme this block would be lost.
	m.Crash()
	fmt.Println("-- crash: dirty security metadata lost --")

	rep, err := m.Recover()
	if err != nil {
		panic(err)
	}
	fmt.Printf("recovered %d SIT nodes in %.1f us (simulated)\n",
		rep.NodesRecovered, rep.SimulatedNS/1e3)

	got, err = m.Read(0x1000)
	if err != nil {
		panic(err)
	}
	fmt.Printf("read after crash  %q\n", got[:14])
}
